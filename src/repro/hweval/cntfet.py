"""32 nm CNTFET ternary standard-cell technology description.

The delay/energy/leakage values below are representative of the simplified
32 nm CNTFET ternary gate models of refs. [7] and [8] of the paper
(ternary gates built from carbon-nanotube FETs with three stable voltage
levels, characterised at VDD = 0.9 V without parasitic wire capacitance).
Absolute published numbers vary between the cited works; the values here are
chosen inside the published ranges and calibrated so that the 652-gate ART-9
datapath lands in the tens-of-microwatts regime reported in Table IV.
"""

from __future__ import annotations

from repro.hweval.technology import GateKind, GateProperties, TechnologyLibrary

#: Supply voltage of the characterisation corner (Table IV).
CNTFET_SUPPLY_VOLTAGE = 0.9


def cntfet_32nm_library() -> TechnologyLibrary:
    """Return the CNTFET ternary gate library used for Table IV."""
    library = TechnologyLibrary(
        name="cntfet-32nm",
        supply_voltage=CNTFET_SUPPLY_VOLTAGE,
        default_activity_factor=0.12,
    )
    # Inverter family: the simplest ternary cells.
    library.add_gate(GateKind.STI, GateProperties(
        delay_ps=55.0, switching_energy_fj=0.25, static_power_nw=26.0, transistor_count=4))
    library.add_gate(GateKind.NTI, GateProperties(
        delay_ps=42.0, switching_energy_fj=0.18, static_power_nw=19.0, transistor_count=2))
    library.add_gate(GateKind.PTI, GateProperties(
        delay_ps=42.0, switching_energy_fj=0.18, static_power_nw=19.0, transistor_count=2))
    # Two-input gates.
    library.add_gate(GateKind.AND, GateProperties(
        delay_ps=80.0, switching_energy_fj=0.38, static_power_nw=42.0, transistor_count=8))
    library.add_gate(GateKind.OR, GateProperties(
        delay_ps=80.0, switching_energy_fj=0.38, static_power_nw=42.0, transistor_count=8))
    library.add_gate(GateKind.XOR, GateProperties(
        delay_ps=118.0, switching_energy_fj=0.62, static_power_nw=64.0, transistor_count=14))
    # Arithmetic cells.
    library.add_gate(GateKind.HALF_ADDER, GateProperties(
        delay_ps=160.0, switching_energy_fj=1.05, static_power_nw=90.0, transistor_count=22))
    library.add_gate(GateKind.FULL_ADDER, GateProperties(
        delay_ps=290.0, switching_energy_fj=1.90, static_power_nw=150.0, transistor_count=38))
    # Selection / storage / control cells.
    library.add_gate(GateKind.MUX, GateProperties(
        delay_ps=70.0, switching_energy_fj=0.33, static_power_nw=34.0, transistor_count=10))
    library.add_gate(GateKind.COMPARATOR, GateProperties(
        delay_ps=95.0, switching_energy_fj=0.48, static_power_nw=50.0, transistor_count=12))
    library.add_gate(GateKind.FLIPFLOP, GateProperties(
        delay_ps=130.0, switching_energy_fj=0.80, static_power_nw=75.0, transistor_count=20))
    library.add_gate(GateKind.DECODER, GateProperties(
        delay_ps=65.0, switching_energy_fj=0.29, static_power_nw=30.0, transistor_count=8))
    return library
