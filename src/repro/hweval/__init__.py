"""Hardware-level evaluation framework (Sec. III-B of the paper).

The framework has three stages, mirroring Fig. 3:

1. the **cycle-accurate simulator** (:mod:`repro.sim.pipeline`) supplies the
   processing-cycle counts for a workload;
2. the **gate-level analyzer** (:mod:`repro.hweval.analyzer`) takes the
   structural description of the pipelined ART-9 datapath
   (:mod:`repro.hweval.netlist`) together with a *technology property
   description* (:mod:`repro.hweval.technology`) and estimates gate count,
   critical delay and power;
3. the **performance estimator** (:mod:`repro.hweval.estimator`) combines
   both into the implementation-aware metrics the paper reports: operating
   frequency, DMIPS, DMIPS/MHz and DMIPS/W.

Two technology property descriptions are bundled: the 32 nm CNTFET ternary
standard cells of refs. [7]/[8] (Table IV) and the binary-encoded FPGA
emulation on an Intel Stratix-V (Table V).
"""

from repro.hweval.technology import GateKind, GateProperties, TechnologyLibrary
from repro.hweval.cntfet import cntfet_32nm_library
from repro.hweval.fpga import FPGAEmulationModel, FPGAResourceReport, stratix_v_model
from repro.hweval.netlist import ART9_BLOCKS, DatapathBlock, art9_datapath_netlist
from repro.hweval.analyzer import GateLevelAnalyzer, GateLevelReport
from repro.hweval.estimator import DhrystoneMetrics, PerformanceEstimator, PerformanceReport

__all__ = [
    "GateKind",
    "GateProperties",
    "TechnologyLibrary",
    "cntfet_32nm_library",
    "FPGAEmulationModel",
    "FPGAResourceReport",
    "stratix_v_model",
    "DatapathBlock",
    "ART9_BLOCKS",
    "art9_datapath_netlist",
    "GateLevelAnalyzer",
    "GateLevelReport",
    "PerformanceEstimator",
    "PerformanceReport",
    "DhrystoneMetrics",
]
