"""FPGA emulation resource/power model (Intel Stratix-V, Table V).

The FPGA prototype of the paper emulates every ternary building block with
binary logic, storing each balanced trit in two bits (the binary-encoded
ternary system of ref. [27]).  This module estimates the resources such an
emulation occupies on a Stratix-V class device:

* **registers** — two bits per trit of architectural/pipeline state;
* **ALMs** — adaptive logic modules for the combinational gates, using
  per-gate-kind ALM cost factors typical of 2-bit-encoded ternary functions
  (a ternary full adder needs a handful of 6-input LUTs, an inverter fits in
  a fraction of an ALM, ...);
* **block RAM bits** — the binary-encoded TIM and TDM;
* **power** — the device static power plus a dynamic term proportional to
  the used ALMs, the clock frequency and an activity factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hweval.netlist import DatapathBlock, MemorySizing, art9_datapath_netlist
from repro.hweval.technology import GateKind

#: ALM cost of one emulated ternary gate (2-bit encoded logic on 6-input LUTs).
DEFAULT_ALM_COSTS: Dict[str, float] = {
    GateKind.STI: 0.75,
    GateKind.NTI: 0.75,
    GateKind.PTI: 0.75,
    GateKind.AND: 1.5,
    GateKind.OR: 1.5,
    GateKind.XOR: 2.0,
    GateKind.HALF_ADDER: 3.0,
    GateKind.FULL_ADDER: 5.0,
    GateKind.MUX: 1.5,
    GateKind.COMPARATOR: 2.5,
    GateKind.FLIPFLOP: 0.4,    # packing/routing overhead around the register
    GateKind.DECODER: 1.25,
}


@dataclass
class FPGAResourceReport:
    """Estimated FPGA implementation of the binary-encoded ART-9 core."""

    device: str
    frequency_mhz: float
    alms: int
    registers: int
    ram_bits: int
    static_power_w: float
    dynamic_power_w: float

    @property
    def total_power_w(self) -> float:
        """Total board power in watts."""
        return self.static_power_w + self.dynamic_power_w

    def summary(self) -> str:
        """Human-readable report in the style of Table V."""
        lines = [
            f"device        : {self.device}",
            f"frequency     : {self.frequency_mhz:.0f} MHz",
            f"ALMs          : {self.alms}",
            f"registers     : {self.registers}",
            f"RAM bits      : {self.ram_bits}",
            f"power         : {self.total_power_w:.2f} W "
            f"(static {self.static_power_w:.2f} + dynamic {self.dynamic_power_w:.2f})",
        ]
        return "\n".join(lines)


@dataclass
class FPGAEmulationModel:
    """Maps the ternary block inventory onto FPGA resources."""

    device: str = "Intel Stratix-V"
    frequency_mhz: float = 150.0
    supply_voltage: float = 0.9
    static_power_w: float = 0.82
    #: Dynamic power per ALM per MHz at the default activity (measured-style
    #: fitting constant for mid-size Stratix-V designs).
    dynamic_w_per_alm_mhz: float = 2.2e-6
    activity_factor: float = 0.125
    alm_costs: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_ALM_COSTS))
    memory: MemorySizing = field(default_factory=MemorySizing)

    def estimate(self, blocks: Optional[List[DatapathBlock]] = None) -> FPGAResourceReport:
        """Estimate the FPGA resources of ``blocks`` (default: ART-9 datapath)."""
        blocks = blocks if blocks is not None else art9_datapath_netlist()

        alms = 0.0
        flipflop_trits = 0
        for block in blocks:
            for kind, count in block.gates.items():
                alms += count * self.alm_costs[kind]
                if kind == GateKind.FLIPFLOP:
                    flipflop_trits += count

        registers = 2 * flipflop_trits  # two bits per trit of state
        ram_bits = self.memory.binary_encoded_bits()
        dynamic = (
            self.dynamic_w_per_alm_mhz
            * alms
            * self.frequency_mhz
            * (self.activity_factor / 0.125)
        )
        return FPGAResourceReport(
            device=self.device,
            frequency_mhz=self.frequency_mhz,
            alms=int(round(alms)),
            registers=registers,
            ram_bits=ram_bits,
            static_power_w=self.static_power_w,
            dynamic_power_w=dynamic,
        )


def stratix_v_model() -> FPGAEmulationModel:
    """The Stratix-V configuration used for Table V (150 MHz, 256-word memories)."""
    return FPGAEmulationModel()
