"""Technology property descriptions for the gate-level analyzer.

The paper's gate-level analyzer takes "the property description of the
design technology ... which includes delay and power characteristics of
primitive building blocks" as a separate input, so that the same ART-9
netlist can be evaluated on CNTFET ternary gates, CMOS-based ternary
transistors, or a binary FPGA emulation.  :class:`TechnologyLibrary` is that
property description: a table of per-gate delay, switching energy and static
power, plus the supply voltage the numbers were characterised at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable


class GateKind:
    """Names of the primitive ternary building blocks used by the netlist."""

    STI = "STI"            # standard ternary inverter
    NTI = "NTI"            # negative ternary inverter
    PTI = "PTI"            # positive ternary inverter
    AND = "TAND"           # two-input ternary AND (minimum)
    OR = "TOR"             # two-input ternary OR (maximum)
    XOR = "TXOR"           # two-input ternary XOR (carry-free sum)
    HALF_ADDER = "THA"     # ternary half adder
    FULL_ADDER = "TFA"     # ternary full adder
    MUX = "TMUX"           # 2:1 ternary multiplexer
    COMPARATOR = "TCMP"    # single-trit three-way comparator cell
    FLIPFLOP = "TDFF"      # ternary D flip-flop (one trit of state)
    DECODER = "TDEC"       # small decode cell (per control output)

    ALL = (STI, NTI, PTI, AND, OR, XOR, HALF_ADDER, FULL_ADDER, MUX,
           COMPARATOR, FLIPFLOP, DECODER)


@dataclass(frozen=True)
class GateProperties:
    """Delay/energy/power characteristics of one primitive gate."""

    delay_ps: float            # propagation delay in picoseconds
    switching_energy_fj: float  # energy per output transition in femtojoules
    static_power_nw: float      # static (leakage) power in nanowatts
    transistor_count: int = 0   # informational, for area-style comparisons


@dataclass
class TechnologyLibrary:
    """A named collection of gate properties at a given supply voltage."""

    name: str
    supply_voltage: float
    gates: Dict[str, GateProperties] = field(default_factory=dict)
    #: Average fraction of gates that toggle per clock cycle, used by the
    #: dynamic-power estimate when no workload activity trace is available.
    default_activity_factor: float = 0.15

    def add_gate(self, kind: str, properties: GateProperties) -> None:
        """Register (or replace) the properties of gate ``kind``."""
        if kind not in GateKind.ALL:
            raise ValueError(f"unknown gate kind {kind!r}")
        self.gates[kind] = properties

    def properties(self, kind: str) -> GateProperties:
        """Look up the properties of gate ``kind``."""
        try:
            return self.gates[kind]
        except KeyError:
            raise KeyError(
                f"technology {self.name!r} has no characterisation for gate {kind!r}"
            ) from None

    def missing_gates(self, kinds: Iterable[str]) -> list:
        """Which of ``kinds`` have no characterisation in this library."""
        return [kind for kind in kinds if kind not in self.gates]

    def delay_ps(self, kind: str) -> float:
        """Propagation delay of ``kind`` in picoseconds."""
        return self.properties(kind).delay_ps

    def describe(self) -> str:
        """Human-readable table of the library contents."""
        lines = [f"technology {self.name} @ {self.supply_voltage:.2f} V"]
        lines.append(f"{'gate':8s} {'delay(ps)':>10s} {'E_sw(fJ)':>10s} {'P_st(nW)':>10s}")
        for kind in GateKind.ALL:
            if kind not in self.gates:
                continue
            props = self.gates[kind]
            lines.append(
                f"{kind:8s} {props.delay_ps:10.2f} {props.switching_energy_fj:10.3f} "
                f"{props.static_power_nw:10.3f}"
            )
        return "\n".join(lines)
