"""Gate-level analyzer: gate counts, critical delay and power.

The analyzer walks the block inventory of the ART-9 datapath
(:mod:`repro.hweval.netlist`), looks every primitive gate up in the supplied
technology property description and produces:

* the total gate count and its per-stage / per-block breakdown;
* the critical delay, estimated as the longest sum of (stage input latch →
  combinational chain → stage output latch) over the five pipeline stages
  — because the design is pipelined, the clock period is set by the slowest
  stage, not by the sum of all stages;
* the power consumption: static power of every gate plus dynamic power from
  the per-gate switching energy, the clock frequency and an activity factor.

These are exactly the quantities the performance estimator needs to fill in
Table IV (CNTFET) and, combined with the FPGA resource model, Table V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hweval.netlist import DatapathBlock, art9_datapath_netlist
from repro.hweval.technology import GateKind, TechnologyLibrary


@dataclass
class GateLevelReport:
    """Output of the gate-level analyzer for one technology."""

    technology: str
    supply_voltage: float
    total_gates: int
    gates_by_kind: Dict[str, int]
    gates_by_stage: Dict[str, int]
    critical_delay_ps: float
    critical_stage: str
    max_frequency_mhz: float
    static_power_uw: float
    dynamic_power_uw_at_fmax: float
    total_power_uw: float
    transistor_count: int

    def power_at(self, frequency_mhz: float, activity_factor: Optional[float] = None) -> float:
        """Total power in microwatts at an arbitrary operating frequency."""
        if frequency_mhz <= 0:
            raise ValueError("frequency must be positive")
        scale = frequency_mhz / self.max_frequency_mhz
        return self.static_power_uw + self.dynamic_power_uw_at_fmax * scale

    def summary(self) -> str:
        """Human-readable report in the style of Table IV."""
        lines = [
            f"technology          : {self.technology} @ {self.supply_voltage:.2f} V",
            f"total ternary gates : {self.total_gates}",
            f"critical delay      : {self.critical_delay_ps:.1f} ps ({self.critical_stage} stage)",
            f"max frequency       : {self.max_frequency_mhz:.1f} MHz",
            f"static power        : {self.static_power_uw:.2f} uW",
            f"dynamic power @fmax : {self.dynamic_power_uw_at_fmax:.2f} uW",
            f"total power @fmax   : {self.total_power_uw:.2f} uW",
        ]
        return "\n".join(lines)


class GateLevelAnalyzer:
    """Analyses a datapath block inventory against a technology library."""

    def __init__(self, blocks: Optional[List[DatapathBlock]] = None):
        self.blocks = blocks if blocks is not None else art9_datapath_netlist()

    # -- individual analyses ------------------------------------------------------

    def gate_counts(self) -> Dict[str, int]:
        """Total gate count per primitive gate kind."""
        counts: Dict[str, int] = {kind: 0 for kind in GateKind.ALL}
        for block in self.blocks:
            for kind, count in block.gates.items():
                counts[kind] = counts.get(kind, 0) + count
        return {kind: count for kind, count in counts.items() if count}

    def gate_counts_by_stage(self) -> Dict[str, int]:
        """Total gate count per pipeline stage."""
        by_stage: Dict[str, int] = {}
        for block in self.blocks:
            by_stage[block.stage] = by_stage.get(block.stage, 0) + block.gate_count()
        return by_stage

    def total_gates(self) -> int:
        """Total number of primitive ternary gates in the datapath."""
        return sum(block.gate_count() for block in self.blocks)

    def critical_delay_ps(self, technology: TechnologyLibrary):
        """Return ``(delay_ps, stage)`` of the slowest pipeline stage.

        Each stage's delay is the flip-flop clock-to-output delay plus the
        longest combinational chain of any block in that stage (blocks within
        a stage operate in parallel on the same operands).
        """
        clk_to_q = technology.delay_ps(GateKind.FLIPFLOP)
        worst_delay = 0.0
        worst_stage = "EX"
        for stage in ("IF", "ID", "EX", "MEM", "WB"):
            serial_chain = 0.0
            parallel_chain = 0.0
            for block in self.blocks:
                if block.stage != stage or not block.critical_chain:
                    continue
                chain = sum(technology.delay_ps(kind) for kind in block.critical_chain)
                if block.path_order is not None:
                    serial_chain += chain
                else:
                    parallel_chain = max(parallel_chain, chain)
            delay = clk_to_q + max(serial_chain, parallel_chain)
            if delay > worst_delay:
                worst_delay, worst_stage = delay, stage
        return worst_delay, worst_stage

    def power_uw(self, technology: TechnologyLibrary, frequency_mhz: float,
                 activity_factor: Optional[float] = None):
        """Return ``(static_uw, dynamic_uw)`` at the given clock frequency."""
        activity = technology.default_activity_factor if activity_factor is None else activity_factor
        static_nw = 0.0
        switched_energy_fj = 0.0
        for block in self.blocks:
            for kind, count in block.gates.items():
                props = technology.properties(kind)
                static_nw += count * props.static_power_nw
                switched_energy_fj += count * props.switching_energy_fj * activity
        # dynamic power = energy per cycle * cycles per second
        dynamic_w = switched_energy_fj * 1e-15 * frequency_mhz * 1e6
        return static_nw * 1e-3, dynamic_w * 1e6

    def transistor_count(self, technology: TechnologyLibrary) -> int:
        """Total transistor count (informational)."""
        total = 0
        for block in self.blocks:
            for kind, count in block.gates.items():
                total += count * technology.properties(kind).transistor_count
        return total

    # -- combined report --------------------------------------------------------------

    def analyze(self, technology: TechnologyLibrary,
                activity_factor: Optional[float] = None) -> GateLevelReport:
        """Run the full analysis against ``technology``."""
        missing = technology.missing_gates(self.gate_counts())
        if missing:
            raise ValueError(
                f"technology {technology.name!r} lacks characterisation for: {missing}"
            )
        delay_ps, stage = self.critical_delay_ps(technology)
        fmax_mhz = 1e6 / delay_ps  # 1/ps = THz; 1e6/ps = MHz
        static_uw, dynamic_uw = self.power_uw(technology, fmax_mhz, activity_factor)
        return GateLevelReport(
            technology=technology.name,
            supply_voltage=technology.supply_voltage,
            total_gates=self.total_gates(),
            gates_by_kind=self.gate_counts(),
            gates_by_stage=self.gate_counts_by_stage(),
            critical_delay_ps=delay_ps,
            critical_stage=stage,
            max_frequency_mhz=fmax_mhz,
            static_power_uw=static_uw,
            dynamic_power_uw_at_fmax=dynamic_uw,
            total_power_uw=static_uw + dynamic_uw,
            transistor_count=self.transistor_count(technology),
        )
