"""ART-9: design and evaluation frameworks for a RISC-based ternary processor.

This package reproduces the system described in "Design and Evaluation
Frameworks for Advanced RISC-based Ternary Processor" (DATE 2022):

* :mod:`repro.ternary` — the balanced ternary number system substrate;
* :mod:`repro.isa` — the 24-instruction ART-9 ISA, assembler and encodings;
* :mod:`repro.sim` — the functional and cycle-accurate (5-stage pipeline)
  simulators;
* :mod:`repro.riscv` — the RV-32I substrate standing in for the binary
  tool chain;
* :mod:`repro.xlate` — the software-level compiling framework (RV-32I →
  ART-9 translation);
* :mod:`repro.baselines` — PicoRV32 / VexRiscv cycle models and the ARMv6-M
  code-size model;
* :mod:`repro.hweval` — the hardware-level evaluation framework (technology
  libraries, gate-level analyzer, performance estimator);
* :mod:`repro.workloads` — the benchmark programs of the evaluation;
* :mod:`repro.framework` — high-level facades tying the flows together.
"""

from repro.framework import HardwareFramework, SoftwareFramework

__version__ = "1.0.0"

__all__ = ["SoftwareFramework", "HardwareFramework", "__version__"]
