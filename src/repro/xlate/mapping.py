"""Instruction mapping: RV-32 instructions to ART-9 virtual-register code.

This is the first step of the software-level framework (Fig. 2).  Each RV-32
instruction becomes one or more ART-9 instructions whose register operands
are *virtual* registers (the RV register numbers themselves, plus translator
temporaries).  Register renaming and immediate legalisation happen in later
passes; this pass only decides the instruction sequences.

Mapping summary
---------------

=====================  ========================================================
RV-32 instruction      ART-9 primitive sequence
=====================  ========================================================
``add/sub``            ``MV`` (when rd differs from rs1) + ``ADD``/``SUB``
``addi``               ``MV`` + ``ADDI``
``and/or/xor`` (+i)    ``MV`` + ternary ``AND``/``OR``/``XOR`` — ternary
                       gate semantics, see the caveat below
``slli k``             doubling chain (k × ``ADD rd, rd``)
``srli/srai k``        call ``__t_div`` with divisor ``2**k``
``sll/srl/sra``        calls into ``__t_sll`` / ``__t_div``
``slt/slti/sltu``      ``COMP`` + conditional increment
``lui/li``             ``LUI``/``LI`` constant construction
``lw/sw`` (lb/sb/...)  ``LOAD``/``STORE`` (byte addresses kept verbatim)
``beq/bne/blt/bge``    ``MV`` + ``COMP`` + ``BEQ``/``BNE`` on the result trit
``jal/jalr``           ``JAL``/``JALR``
``mul/div/rem``        calls into ``__t_mul`` / ``__t_div``
``ecall/ebreak``       ``HALT``
=====================  ========================================================

Caveats (documented substitutions):

* Bitwise ``and``/``or``/``xor`` map onto the *ternary* gates of Fig. 1,
  which agree with the binary operations only on {0, 1}-valued operands.
  The benchmark programs avoid relying on wider bitwise semantics.
* ``bltu``/``bgeu`` are mapped like their signed counterparts; benchmark
  values stay far below the signed/unsigned divergence point.
* Code addresses must not be materialised as data (function-pointer tables
  are not translatable) because ART-9 instruction addresses differ from
  RV-32 byte addresses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa.assembler import split_constant
from repro.isa.instructions import Instruction
from repro.riscv.isa import RVInstruction
from repro.riscv.program import RVProgram
from repro.ternary.word import TernaryWord, WORD_TRITS
from repro.xlate.errors import TranslationError
from repro.xlate.ir import LabelMarker, TranslationUnit, VirtualRegisterFile, V_ZERO

#: TDM word address loaded into the stack pointer by the translated prologue.
#: The value keeps the (byte-addressed) stack clear of both the program data
#: growing up from address 0 and the register spill slots at the top of the
#: address space.
STACK_TOP_ADDRESS = 9000

_WORD_MIN, _WORD_MAX = TernaryWord.value_range(WORD_TRITS)


class InstructionMapper:
    """Maps one RV-32 program into an ART-9 :class:`TranslationUnit`."""

    def __init__(self, vregs: Optional[VirtualRegisterFile] = None):
        self.vregs = vregs or VirtualRegisterFile()
        self._label_counter = 0

    def _fresh_label(self, stem: str) -> str:
        """Return a unique local label for mapper-generated control flow."""
        self._label_counter += 1
        return f".L{stem}_{self._label_counter}"

    # -- public entry point --------------------------------------------------------

    def map_program(self, program: RVProgram) -> TranslationUnit:
        """Translate every instruction of ``program`` (data is copied through)."""
        unit = TranslationUnit(name=f"{program.name}.art9")
        for segment in program.data:
            # RV word i lives at byte address 4*i; the translated code keeps
            # byte addressing, so the word is stored at TDM address 4*i.
            while len(unit.data_words) < (segment.base_address // 4 + len(segment.values)) * 4:
                unit.data_words.append(0)
            for offset, value in enumerate(segment.values):
                self._check_constant(value, "data word")
                unit.data_words[segment.base_address + 4 * offset] = value

        branch_targets = self._collect_branch_targets(program)

        self._emit_prologue(unit)
        for index, instruction in enumerate(program.instructions):
            if index in branch_targets:
                unit.append(LabelMarker(branch_targets[index]))
            self._map_instruction(unit, program, index, instruction)
        return unit

    # -- helpers ----------------------------------------------------------------------

    def _collect_branch_targets(self, program: RVProgram) -> Dict[int, str]:
        """Generate a label for every RV instruction index that is jumped to."""
        targets: Dict[int, str] = {}
        for index, instruction in enumerate(program.instructions):
            spec = instruction.spec
            if not (spec.is_branch or instruction.mnemonic == "jal"):
                continue
            if instruction.imm is None:
                raise TranslationError(f"unresolved branch target in {instruction.render()}")
            target_index = (4 * index + instruction.imm) // 4
            if not 0 <= target_index <= len(program.instructions):
                raise TranslationError(
                    f"branch target {target_index} outside program in {instruction.render()}"
                )
            targets.setdefault(target_index, f".L{target_index}")
        return targets

    def _target_label(self, index: int, imm: int) -> str:
        return f".L{(4 * index + imm) // 4}"

    def _check_constant(self, value: int, what: str) -> None:
        if not _WORD_MIN <= value <= _WORD_MAX:
            raise TranslationError(
                f"{what} {value} does not fit the 9-trit range "
                f"[{_WORD_MIN}, {_WORD_MAX}]; scale the workload down"
            )

    def _emit_prologue(self, unit: TranslationUnit) -> None:
        """Initialise the stack pointer (the RV simulator does this implicitly)."""
        self._emit_constant(unit, 2, STACK_TOP_ADDRESS)

    def _emit_constant(self, unit: TranslationUnit, vreg: int, value: int) -> None:
        """Materialise a full-width constant into ``vreg`` (LUI/LI pair)."""
        self._check_constant(value, "constant")
        high, low = split_constant(value)
        unit.append(Instruction("LUI", ta=vreg, imm=high))
        unit.append(Instruction("LI", ta=vreg, imm=low))

    def _emit_move(self, unit: TranslationUnit, dst: int, src: int) -> None:
        if dst != src:
            unit.append(Instruction("MV", ta=dst, tb=src))

    def _helper_call(self, unit: TranslationUnit, helper: str, arg0: int, arg1: int, result: int,
                     second_result: bool = False) -> None:
        """Emit a call to a runtime helper and move its result into ``result``."""
        from repro.xlate.runtime import HELPER_LABELS

        unit.required_helpers.add(helper)
        reg = self.vregs.named_temp
        self._emit_move(unit, reg("helper_arg0"), arg0)
        self._emit_move(unit, reg("helper_arg1"), arg1)
        unit.append(Instruction("JAL", ta=reg("helper_link"), label=HELPER_LABELS[helper]))
        source = reg("helper_ret2") if second_result else reg("helper_ret")
        self._emit_move(unit, result, source)

    # -- per-instruction mapping ----------------------------------------------------------

    def _map_instruction(self, unit: TranslationUnit, program: RVProgram,
                         index: int, instr: RVInstruction) -> None:
        mnemonic = instr.mnemonic
        source_text = instr.render()

        def emit(art_mnemonic: str, **fields) -> None:
            unit.append(Instruction(art_mnemonic, source=source_text, **fields))

        rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm

        # Writes to x0 are architectural no-ops (except for their side effects,
        # which none of the mapped instructions have).
        if instr.spec.writes_rd and rd == 0 and not instr.spec.is_jump:
            return

        if mnemonic in ("ecall", "ebreak"):
            emit("HALT")
            return

        if mnemonic == "lui":
            self._emit_constant(unit, rd, imm << 12)
            return
        if mnemonic == "auipc":
            raise TranslationError(
                f"auipc is not translatable (code addresses differ between the ISAs): {source_text}"
            )

        if mnemonic == "addi":
            self._emit_move(unit, rd, rs1)
            if imm != 0 or rd == rs1:
                emit("ADDI", ta=rd, imm=imm)
            return
        if mnemonic in ("andi", "ori", "xori"):
            ternary = {"andi": "AND", "ori": "OR", "xori": "XOR"}[mnemonic]
            temp = self.vregs.named_temp("map_imm")
            self._emit_constant(unit, temp, imm)
            self._emit_move(unit, rd, rs1)
            emit(ternary, ta=rd, tb=temp)
            return

        if mnemonic in ("add", "sub", "and", "or", "xor"):
            ternary = {"add": "ADD", "sub": "SUB", "and": "AND", "or": "OR", "xor": "XOR"}[mnemonic]
            commutative = mnemonic in ("add", "and", "or", "xor")
            if rd == rs1:
                emit(ternary, ta=rd, tb=rs2)
            elif rd == rs2 and commutative:
                emit(ternary, ta=rd, tb=rs1)
            elif rd == rs2:
                temp = self.vregs.named_temp("map_tmp")
                self._emit_move(unit, temp, rs1)
                emit(ternary, ta=temp, tb=rs2)
                self._emit_move(unit, rd, temp)
            else:
                self._emit_move(unit, rd, rs1)
                emit(ternary, ta=rd, tb=rs2)
            return

        if mnemonic == "slli":
            self._map_shift_left_constant(unit, rd, rs1, imm)
            return
        if mnemonic in ("srli", "srai"):
            temp = self.vregs.named_temp("map_imm")
            self._emit_constant(unit, temp, 1 << imm)
            self._helper_call(unit, "div", rs1, temp, rd)
            return
        if mnemonic == "sll":
            self._helper_call(unit, "sll", rs1, rs2, rd)
            return
        if mnemonic in ("srl", "sra"):
            # Compute 2**rs2 through the shift helper, then divide.
            temp = self.vregs.named_temp("map_imm")
            one = self.vregs.named_temp("map_one")
            self._emit_constant(unit, one, 1)
            self._helper_call(unit, "sll", one, rs2, temp)
            self._helper_call(unit, "div", rs1, temp, rd)
            return

        if mnemonic in ("slt", "slti", "sltu", "sltiu"):
            self._map_set_less_than(unit, instr)
            return

        if mnemonic in ("mul", "mulh", "mulhu"):
            if mnemonic != "mul":
                raise TranslationError(
                    f"high-half multiplies are meaningless on the 9-trit datapath: {source_text}"
                )
            self._helper_call(unit, "mul", rs1, rs2, rd)
            return
        if mnemonic in ("div", "divu"):
            self._helper_call(unit, "div", rs1, rs2, rd)
            return
        if mnemonic in ("rem", "remu"):
            self._helper_call(unit, "div", rs1, rs2, rd, second_result=True)
            return

        if mnemonic in ("lw", "lb", "lbu", "lh", "lhu"):
            emit("LOAD", ta=rd, tb=rs1, imm=imm)
            return
        if mnemonic in ("sw", "sb", "sh"):
            emit("STORE", ta=rs2, tb=rs1, imm=imm)
            return

        if instr.spec.is_branch:
            self._map_branch(unit, index, instr)
            return

        if mnemonic == "jal":
            destination = self.vregs.named_temp("discard") if rd == 0 else rd
            emit("JAL", ta=destination, label=self._target_label(index, imm))
            return
        if mnemonic == "jalr":
            destination = self.vregs.named_temp("discard") if rd == 0 else rd
            emit("JALR", ta=destination, tb=rs1, imm=imm or 0)
            return

        raise TranslationError(f"no ART-9 mapping for {source_text}")

    def _map_shift_left_constant(self, unit: TranslationUnit, rd: int, rs1: int, amount: int) -> None:
        """``slli rd, rs1, k`` becomes a doubling chain of k additions."""
        if amount < 0 or amount > 13:
            raise TranslationError(f"unreasonable shift amount {amount}")
        self._emit_move(unit, rd, rs1)
        for _ in range(amount):
            unit.append(Instruction("ADD", ta=rd, tb=rd))

    def _map_set_less_than(self, unit: TranslationUnit, instr: RVInstruction) -> None:
        """slt/slti and their unsigned forms via COMP plus a conditional increment."""
        rd = instr.rd
        compare = self.vregs.named_temp("map_cmp")
        other = self.vregs.named_temp("map_imm")
        self._emit_move(unit, compare, instr.rs1)
        if instr.mnemonic in ("slti", "sltiu"):
            self._emit_constant(unit, other, instr.imm)
        else:
            other = instr.rs2
        unit.append(Instruction("COMP", ta=compare, tb=other))
        # rd = 0, then rd += 1 when the comparison result is "less".
        unit.append(Instruction("MV", ta=rd, tb=V_ZERO))
        skip = self._fresh_label("slt")
        unit.append(Instruction("BNE", tb=compare, branch_trit=-1, label=skip))
        unit.append(Instruction("ADDI", ta=rd, imm=1))
        unit.append(LabelMarker(skip))

    def _map_branch(self, unit: TranslationUnit, index: int, instr: RVInstruction) -> None:
        """Conditional branches: COMP into a temporary, then BEQ/BNE on its trit."""
        target = self._target_label(index, instr.imm)
        compare = self.vregs.named_temp("map_cmp")
        self._emit_move(unit, compare, instr.rs1)
        unit.append(Instruction("COMP", ta=compare, tb=instr.rs2, source=instr.render()))
        mapping = {
            "beq": ("BEQ", 0),
            "bne": ("BNE", 0),
            "blt": ("BEQ", -1),
            "bltu": ("BEQ", -1),
            "bge": ("BNE", -1),
            "bgeu": ("BNE", -1),
        }
        art_mnemonic, trit = mapping[instr.mnemonic]
        unit.append(Instruction(art_mnemonic, tb=compare, branch_trit=trit, label=target,
                                source=instr.render()))
