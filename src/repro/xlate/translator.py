"""High-level driver for the software-level compiling framework.

:func:`translate_program` runs the complete pass pipeline of Fig. 2 —
instruction mapping, operand conversion (with register renaming), redundancy
checking and final layout — and returns both the executable ART-9
:class:`~repro.isa.program.Program` and a :class:`TranslationReport`
describing what happened (instruction counts after each pass, the register
allocation, memory-cell footprints of the source and the result).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.isa.program import Program
from repro.riscv.program import RVProgram, RV_INSTRUCTION_BITS
from repro.ternary.word import WORD_TRITS
from repro.xlate.ir import TranslationUnit, VirtualRegisterFile
from repro.xlate.layout import RelaxationNeedsScratchError, emit_program
from repro.xlate.mapping import InstructionMapper
from repro.xlate.operands import convert_operands
from repro.xlate.redundancy import remove_redundancies
from repro.xlate.regalloc import RegisterAllocation, RegisterAllocator
from repro.xlate.runtime import append_runtime_helpers

#: Version of the translation pipeline's observable output.  Part of the
#: artifact-cache key for cached translations (:mod:`repro.cache`): bump it
#: whenever a pass change can alter the emitted program or the report
#: numbers, and every stale cached translation stops being addressed.
#: (Workload-side changes need no bump — the cache key also digests the
#: workload's generated RV-32 source.)
TRANSLATOR_VERSION = 1


def instruction_expansion_ratio(final_instructions: int,
                                rv_instructions: int) -> float:
    """Ratio of ART-9 instructions to the original RV-32 instructions.

    Shared by :class:`TranslationReport` and the cache-facing
    ``TranslationSummary`` so the two surfaces can never disagree on the
    definition (including the nan-on-empty guard).
    """
    if rv_instructions == 0:
        return float("nan")
    return final_instructions / rv_instructions


def memory_cell_ratio(ternary_memory_trits: int, rv_memory_bits: int) -> float:
    """Ternary memory cells relative to binary memory cells (Fig. 5 metric)."""
    if rv_memory_bits == 0:
        return float("nan")
    return ternary_memory_trits / rv_memory_bits


@dataclass
class TranslationReport:
    """Everything the framework learned while translating one program."""

    source_name: str
    rv_instructions: int
    mapped_instructions: int
    converted_instructions: int
    renamed_instructions: int
    optimized_instructions: int
    final_instructions: int
    helpers_used: tuple
    allocation: RegisterAllocation
    rv_memory_bits: int
    ternary_memory_trits: int
    pass_sizes: Dict[str, int] = field(default_factory=dict)

    @property
    def instruction_expansion(self) -> float:
        """Ratio of ART-9 instructions to the original RV-32 instructions."""
        return instruction_expansion_ratio(self.final_instructions,
                                           self.rv_instructions)

    @property
    def memory_cell_ratio(self) -> float:
        """Ternary memory cells relative to binary memory cells (Fig. 5 metric)."""
        return memory_cell_ratio(self.ternary_memory_trits, self.rv_memory_bits)

    @property
    def memory_saving_percent(self) -> float:
        """Percentage of memory cells saved versus the RV-32I program."""
        return 100.0 * (1.0 - self.memory_cell_ratio)

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"translation of {self.source_name}",
            f"  RV-32 instructions        : {self.rv_instructions}",
            f"  after instruction mapping : {self.mapped_instructions}",
            f"  after operand conversion  : {self.converted_instructions}",
            f"  after register renaming   : {self.renamed_instructions}",
            f"  after redundancy checking : {self.optimized_instructions}",
            f"  final ART-9 instructions  : {self.final_instructions}",
            f"  instruction expansion     : {self.instruction_expansion:.2f}x",
            f"  runtime helpers           : {', '.join(self.helpers_used) or 'none'}",
            f"  RV-32 memory cells        : {self.rv_memory_bits} bits",
            f"  ART-9 memory cells        : {self.ternary_memory_trits} trits",
            f"  memory cells saved        : {self.memory_saving_percent:.1f}%",
        ]
        return "\n".join(lines)


class TernaryTranslator:
    """The software-level compiling framework, as a reusable object."""

    def __init__(self, optimize: bool = True):
        self.optimize = optimize

    def _rename_and_emit(self, allocator: RegisterAllocator, converted: TranslationUnit):
        """Run renaming, redundancy checking and layout, retrying with scratch
        registers reserved when branch relaxation needs them."""
        for force_scratch in (False, True):
            renamed, allocation = allocator.rewrite(converted, force_scratch=force_scratch)
            optimized = remove_redundancies(renamed) if self.optimize else renamed
            try:
                program = emit_program(optimized, allow_scratch_clobber=allocation.uses_scratch)
            except RelaxationNeedsScratchError:
                continue
            return renamed, allocation, optimized, program
        raise RelaxationNeedsScratchError("relaxation failed even with scratch registers reserved")

    def translate(self, rv_program: RVProgram):
        """Translate ``rv_program``; returns ``(art9_program, report)``."""
        vregs = VirtualRegisterFile()
        mapper = InstructionMapper(vregs)

        mapped = mapper.map_program(rv_program)
        append_runtime_helpers(mapped, vregs)
        mapped_count = mapped.instruction_count()

        converted = convert_operands(mapped, vregs)
        converted_count = converted.instruction_count()

        allocator = RegisterAllocator(vregs)
        renamed, allocation, optimized, program = self._rename_and_emit(allocator, converted)
        renamed_count = renamed.instruction_count()
        optimized_count = optimized.instruction_count()
        program.name = f"{rv_program.name} (ART-9)"

        report = TranslationReport(
            source_name=rv_program.name,
            rv_instructions=len(rv_program.instructions),
            mapped_instructions=mapped_count,
            converted_instructions=converted_count,
            renamed_instructions=renamed_count,
            optimized_instructions=optimized_count,
            final_instructions=len(program.instructions),
            helpers_used=tuple(sorted(mapped.required_helpers)),
            allocation=allocation,
            rv_memory_bits=len(rv_program.instructions) * RV_INSTRUCTION_BITS,
            ternary_memory_trits=len(program.instructions) * WORD_TRITS,
            pass_sizes={
                "mapping": mapped_count,
                "operand_conversion": converted_count,
                "register_renaming": renamed_count,
                "redundancy_checking": optimized_count,
            },
        )
        return program, report


def translate_program(rv_program: RVProgram, optimize: bool = True):
    """Convenience wrapper: translate ``rv_program`` with default settings."""
    return TernaryTranslator(optimize=optimize).translate(rv_program)


def locate_rv_register(report: TranslationReport, rv_register: int):
    """Where the translated program keeps RV register ``rv_register``.

    Returns ``("reg", physical_index)`` or ``("slot", tdm_address)``; used by
    the equivalence tests to compare final architectural state between the
    RV-32 reference run and the translated ART-9 run.
    """
    return report.allocation.locate(rv_register)


def read_rv_register_from_simulator(report: TranslationReport, simulator, rv_register: int) -> int:
    """Read the final value of RV register ``rv_register`` from an ART-9 simulator.

    ``simulator`` may be either the functional or the pipeline simulator;
    both expose ``registers`` (a :class:`TernaryRegisterFile`) and ``tdm``.
    """
    kind, where = locate_rv_register(report, rv_register)
    if kind == "reg":
        return simulator.registers.read_int(where)
    return simulator.tdm.read_int(where)
