"""Errors raised by the software-level compiling framework."""

from __future__ import annotations


class TranslationError(ValueError):
    """Raised when an RV-32 construct cannot be translated to ART-9 code.

    The message names the offending instruction and the reason (unsupported
    mnemonic, constant outside the 9-trit range, spilled link register, ...)
    so benchmark authors can adjust the input program.
    """
