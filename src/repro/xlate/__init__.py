"""Software-level compiling framework (Sec. III-A of the paper).

The framework converts RV-32I assembly (as produced by an existing binary
tool chain — here the :mod:`repro.riscv` substrate) into ART-9 ternary
assembly through the three steps described in the paper:

1. **Instruction mapping** (:mod:`repro.xlate.mapping`): each 32-bit
   instruction is translated into one or more ART-9 instructions operating
   on *virtual* ternary registers.  Operations without a direct ternary
   counterpart (multiply, divide, shifts by powers of two) expand into
   primitive sequences or calls into a small ternary runtime library
   (:mod:`repro.xlate.runtime`).
2. **Operand conversion** (:mod:`repro.xlate.operands` and
   :mod:`repro.xlate.regalloc`): immediates that do not fit the narrow
   ternary immediate fields are materialised through LUI/LI pairs, and the
   32 binary registers are renamed onto the nine ternary registers, spilling
   the less frequently used ones to dedicated TDM slots.
3. **Redundancy checking** (:mod:`repro.xlate.redundancy` and
   :mod:`repro.xlate.layout`): meaningless instructions introduced by the
   earlier steps are removed and branch target addresses are re-computed
   (with range relaxation) for the final instruction layout.

The high-level entry point is :func:`repro.xlate.translator.translate_program`.
"""

from repro.xlate.ir import LabelMarker, TranslationUnit, VirtualRegisterFile
from repro.xlate.errors import TranslationError
from repro.xlate.mapping import InstructionMapper
from repro.xlate.operands import convert_operands
from repro.xlate.regalloc import RegisterAllocation, RegisterAllocator
from repro.xlate.redundancy import remove_redundancies
from repro.xlate.layout import emit_program
from repro.xlate.translator import TranslationReport, TernaryTranslator, translate_program

__all__ = [
    "TranslationUnit",
    "LabelMarker",
    "VirtualRegisterFile",
    "TranslationError",
    "InstructionMapper",
    "convert_operands",
    "RegisterAllocator",
    "RegisterAllocation",
    "remove_redundancies",
    "emit_program",
    "TernaryTranslator",
    "TranslationReport",
    "translate_program",
]
