"""Final layout: addresses, branch re-targeting and range relaxation.

After the earlier passes have finished inserting and deleting instructions,
this pass assigns every instruction its TIM address, recomputes every
symbolic branch/jump target ("the proposed framework also re-calculates the
branch target addresses", Sec. III-A) and *relaxes* control transfers whose
PC-relative immediate no longer fits its narrow ternary field:

* a conditional branch that cannot reach its target becomes an inverted
  branch over an absolute-jump sequence;
* a JAL that cannot reach its target becomes a LUI/LI constant build of the
  absolute target address followed by a JALR.

Relaxation may grow the code and move other targets out of range, so the
pass iterates until the layout is stable.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.assembler import split_constant
from repro.isa.formats import imm_range
from repro.isa.instructions import Instruction
from repro.isa.program import DataSegment, Program
from repro.xlate.errors import TranslationError
from repro.xlate.ir import LabelMarker, TranslationUnit
from repro.xlate.regalloc import PHYS_SCRATCH_A, PHYS_SCRATCH_B

_MAX_RELAXATION_ROUNDS = 20


class RelaxationNeedsScratchError(TranslationError):
    """Raised when branch relaxation would clobber T5/T6 but they are live.

    The translator reacts by re-running register renaming with the scratch
    registers reserved, after which relaxation is safe.
    """


def _label_addresses(items: List) -> Dict[str, int]:
    addresses: Dict[str, int] = {}
    address = 0
    for item in items:
        if isinstance(item, LabelMarker):
            addresses[item.name] = address
        else:
            address += 1
    return addresses


def _fits(mnemonic: str, value: int) -> bool:
    lo, hi = imm_range(mnemonic)
    return lo <= value <= hi


def _absolute_jump(target_label: str, link_register: int) -> List[Instruction]:
    """LUI/LI the absolute target address into T6, then JALR through it.

    The concrete immediate values are filled in on the next layout round,
    once the label addresses are known; the placeholder label carries the
    %hi/%lo association.
    """
    return [
        Instruction("LUI", ta=PHYS_SCRATCH_B, label=f"%hi:{target_label}"),
        Instruction("LI", ta=PHYS_SCRATCH_B, label=f"%lo:{target_label}"),
        Instruction("JALR", ta=link_register, tb=PHYS_SCRATCH_B, imm=0),
    ]


def _relax_items(items: List, allow_scratch_clobber: bool) -> List:
    """One relaxation round; returns a new item list (possibly identical)."""
    addresses = _label_addresses(items)
    result: List = []
    address = 0
    changed = False

    for item in items:
        if isinstance(item, LabelMarker):
            result.append(item)
            continue
        instruction = item
        label = instruction.label
        if label is None or label.startswith("%hi:") or label.startswith("%lo:"):
            result.append(instruction)
            address += 1
            continue
        if label not in addresses:
            raise TranslationError(f"undefined label {label!r} in {instruction.render()}")
        offset = addresses[label] - address

        if instruction.spec.is_branch:
            if _fits(instruction.mnemonic, offset):
                result.append(instruction)
                address += 1
            else:
                if not allow_scratch_clobber:
                    raise RelaxationNeedsScratchError(
                        f"{instruction.render()} needs relaxation through T5/T6"
                    )
                inverted = "BNE" if instruction.mnemonic == "BEQ" else "BEQ"
                jump = _absolute_jump(label, PHYS_SCRATCH_A)
                result.append(Instruction(
                    inverted, tb=instruction.tb, branch_trit=instruction.branch_trit,
                    imm=len(jump) + 1, source=instruction.source,
                ))
                result.extend(jump)
                address += 1 + len(jump)
                changed = True
        elif instruction.mnemonic == "JAL":
            if _fits("JAL", offset):
                result.append(instruction)
                address += 1
            else:
                if not allow_scratch_clobber:
                    raise RelaxationNeedsScratchError(
                        f"{instruction.render()} needs relaxation through T5/T6"
                    )
                jump = _absolute_jump(label, instruction.ta)
                result.extend(jump)
                address += len(jump)
                changed = True
        else:
            # LUI/LI/JALR referencing a label directly (absolute addressing).
            result.append(instruction)
            address += 1

    return result if changed else items


def emit_program(unit: TranslationUnit, allow_scratch_clobber: bool = True) -> Program:
    """Produce the final :class:`~repro.isa.program.Program` from ``unit``.

    ``allow_scratch_clobber`` states whether the relaxation sequences may use
    T5/T6; it is False when the register allocator handed those registers to
    live program values, in which case an out-of-range branch raises
    :class:`RelaxationNeedsScratchError` and the translator re-allocates.
    """
    items = list(unit.items)
    for _ in range(_MAX_RELAXATION_ROUNDS):
        relaxed = _relax_items(items, allow_scratch_clobber)
        if relaxed is items:
            break
        items = relaxed
    else:
        raise TranslationError("branch relaxation did not converge")

    addresses = _label_addresses(items)
    program = Program(name=unit.name)
    for name, address in addresses.items():
        program.add_label(name, address)

    for item in items:
        if isinstance(item, LabelMarker):
            continue
        instruction = item.copy()
        label = instruction.label
        if label is not None:
            if label.startswith("%hi:") or label.startswith("%lo:"):
                kind, _, target = label.partition(":")
                if target not in addresses:
                    raise TranslationError(f"undefined label {target!r}")
                high, low = split_constant(addresses[target])
                instruction.imm = high if kind == "%hi" else low
                instruction.label = None
            else:
                target_address = addresses[label]
                if instruction.spec.is_branch or instruction.mnemonic == "JAL":
                    instruction.imm = target_address - len(program.instructions)
                else:
                    instruction.imm = target_address
                # Keep the label for provenance; resolve_labels() is not
                # called afterwards, so the immediate stays authoritative.
        program.append(instruction)

    if unit.data_words:
        program.data.append(DataSegment(base_address=0, values=list(unit.data_words)))

    # Final validation: every immediate must fit its field.
    for address, instruction in enumerate(program.instructions):
        if instruction.imm is not None and not _fits(instruction.mnemonic, instruction.imm):
            raise TranslationError(
                f"immediate {instruction.imm} of {instruction.render()} at address {address} "
                "does not fit after relaxation"
            )
    return program
