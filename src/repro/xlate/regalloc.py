"""Register renaming: virtual registers onto the nine ternary registers.

The paper's operand-conversion step "also supports the register renaming
when the given ternary ISA uses fewer general-purposed registers than the
baseline binary processor" (Sec. III-A).  This pass implements that renaming
with a frequency-guided direct assignment plus spilling:

===========  ===================================================================
T0           the RV ``x0`` (never written, reads as zero)
T1..T3       the most frequently used remaining virtual registers (T4 too
             when no runtime helpers are needed)
T4           the runtime-helper link register (when helpers are present)
T5           scratch for spilled Ta operands; also the "discard" register
             used for link values nobody reads
T6           scratch for spilled Tb operands and far spill-slot addresses
T7           the RV stack pointer ``x2``
T8           the RV return address ``x1``
===========  ===================================================================

Every other virtual register is *spilled* to a dedicated TDM slot at the top
of the ternary address space (slot ``k`` lives at address ``-(k+1)`` modulo
``3**9``), where the first 13 slots are reachable with a single LOAD/STORE
relative to T0 and farther slots need an address materialisation pair.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.assembler import split_constant
from repro.isa.instructions import Instruction
from repro.ternary.word import WORD_TRITS
from repro.xlate.errors import TranslationError
from repro.xlate.ir import LabelMarker, TranslationUnit, VirtualRegisterFile, V_RA, V_SP, V_ZERO

#: Physical register indices with a fixed role.
PHYS_ZERO = 0
PHYS_HELPER_LINK = 4
PHYS_SCRATCH_A = 5   # spilled Ta operands / discard register
PHYS_SCRATCH_B = 6   # spilled Tb operands / far-slot addresses
PHYS_SP = 7
PHYS_RA = 8

#: Number of spill slots reachable with a single LOAD/STORE via T0.
NEAR_SLOTS = 13


@dataclass
class RegisterAllocation:
    """Result of the renaming pass: where every virtual register lives."""

    direct: Dict[int, int] = field(default_factory=dict)
    spilled: Dict[int, int] = field(default_factory=dict)  # virtual -> slot index
    usage: Dict[int, int] = field(default_factory=dict)
    #: True when T5/T6 are reserved as spill scratch registers (and therefore
    #: safe for the layout pass to clobber during branch relaxation).
    uses_scratch: bool = False

    def slot_address(self, slot: int) -> int:
        """Unsigned TDM address of spill slot ``slot``."""
        return (3 ** WORD_TRITS) - (slot + 1)

    def locate(self, virtual: int) -> Tuple[str, int]:
        """Return ``("reg", physical_index)`` or ``("slot", tdm_address)``."""
        if virtual in self.direct:
            return "reg", self.direct[virtual]
        if virtual in self.spilled:
            return "slot", self.slot_address(self.spilled[virtual])
        # A register the program never touches keeps its reset value of zero;
        # report it as the zero register so lookups stay total.
        return "reg", PHYS_ZERO

    def describe(self) -> str:
        """Human-readable allocation table (for reports and debugging)."""
        lines = ["virtual   location   static uses"]
        entries = sorted(set(self.direct) | set(self.spilled))
        for virtual in entries:
            kind, where = self.locate(virtual)
            location = f"T{where}" if kind == "reg" else f"TDM[{where}]"
            lines.append(f"v{virtual:<8d} {location:<10s} {self.usage.get(virtual, 0)}")
        return "\n".join(lines)


class RegisterAllocator:
    """Performs the renaming and rewrites the instruction stream."""

    def __init__(self, vregs: VirtualRegisterFile):
        self.vregs = vregs

    # -- assignment -------------------------------------------------------------

    def _usage_counts(self, unit: TranslationUnit) -> Counter:
        usage = Counter()
        for instruction in unit.instructions():
            spec = instruction.spec
            if "ta" in spec.operands and instruction.ta is not None:
                usage[instruction.ta] += 1
            if "tb" in spec.operands and instruction.tb is not None:
                usage[instruction.tb] += 1
        return usage

    def _attempt(self, unit: TranslationUnit, usage: Counter, reserve_scratch: bool) -> RegisterAllocation:
        """Build one candidate allocation.

        With ``reserve_scratch`` False, T5/T6 join the direct pool; the
        result is only usable when *nothing* spills (there would be no
        scratch registers to route spilled operands through).
        """
        allocation = RegisterAllocation(usage=dict(usage), uses_scratch=reserve_scratch)
        reserved = set()

        # Conditional pins: only claim the conventional registers the
        # program actually relies on.
        if usage.get(V_ZERO, 0) > 0:
            allocation.direct[V_ZERO] = PHYS_ZERO
            reserved.add(PHYS_ZERO)
        if usage.get(V_RA, 0) > 0:
            allocation.direct[V_RA] = PHYS_RA
            reserved.add(PHYS_RA)
        if usage.get(V_SP, 0) > 0:
            allocation.direct[V_SP] = PHYS_SP
            reserved.add(PHYS_SP)

        helpers_present = bool(unit.required_helpers)
        helper_link = self.vregs.named.get("helper_link")
        if helpers_present and helper_link is not None:
            allocation.direct[helper_link] = PHYS_HELPER_LINK
            reserved.add(PHYS_HELPER_LINK)

        discard = self.vregs.named.get("discard")
        if reserve_scratch:
            reserved.update((PHYS_SCRATCH_A, PHYS_SCRATCH_B))
            if discard is not None:
                # The discard register is write-only, so it can share the
                # Ta-scratch without ever holding a live value.
                allocation.direct[discard] = PHYS_SCRATCH_A

        pool = [phys for phys in range(1, 9) if phys not in reserved]
        if not reserve_scratch and PHYS_ZERO not in reserved:
            pool.append(PHYS_ZERO)

        candidates = [
            (count, virtual)
            for virtual, count in usage.items()
            if virtual not in allocation.direct
        ]
        candidates.sort(key=lambda pair: (-pair[0], pair[1]))
        for (count, virtual), physical in zip(candidates, pool):
            allocation.direct[virtual] = physical

        next_slot = 0
        for count, virtual in candidates:
            if virtual in allocation.direct:
                continue
            allocation.spilled[virtual] = next_slot
            next_slot += 1
        return allocation

    def build_allocation(self, unit: TranslationUnit, force_scratch: bool = False) -> RegisterAllocation:
        """Choose direct registers and spill slots for every virtual register.

        The allocator first tries to rename every virtual register directly
        (using all nine physical registers); only when that is impossible —
        or when ``force_scratch`` demands it, e.g. because the layout pass
        needs clobberable scratch registers for branch relaxation — does it
        fall back to the spilling configuration with T5/T6 reserved.
        """
        usage = self._usage_counts(unit)
        if not force_scratch:
            attempt = self._attempt(unit, usage, reserve_scratch=False)
            if not attempt.spilled:
                return attempt
        return self._attempt(unit, usage, reserve_scratch=True)

    # -- rewriting ------------------------------------------------------------------

    def _slot_load(self, scratch: int, slot: int) -> List[Instruction]:
        if slot < NEAR_SLOTS:
            return [Instruction("LOAD", ta=scratch, tb=PHYS_ZERO, imm=-(slot + 1))]
        high, low = split_constant(-(slot + 1))
        return [
            Instruction("LUI", ta=scratch, imm=high),
            Instruction("LI", ta=scratch, imm=low),
            Instruction("LOAD", ta=scratch, tb=scratch, imm=0),
        ]

    def _slot_store(self, value_reg: int, slot: int) -> List[Instruction]:
        if slot < NEAR_SLOTS:
            return [Instruction("STORE", ta=value_reg, tb=PHYS_ZERO, imm=-(slot + 1))]
        high, low = split_constant(-(slot + 1))
        return [
            Instruction("LUI", ta=PHYS_SCRATCH_B, imm=high),
            Instruction("LI", ta=PHYS_SCRATCH_B, imm=low),
            Instruction("STORE", ta=value_reg, tb=PHYS_SCRATCH_B, imm=0),
        ]

    def rewrite(self, unit: TranslationUnit, allocation: Optional[RegisterAllocation] = None,
                force_scratch: bool = False) -> Tuple[TranslationUnit, RegisterAllocation]:
        """Rewrite ``unit`` onto physical registers, inserting spill code."""
        allocation = allocation or self.build_allocation(unit, force_scratch=force_scratch)
        result = TranslationUnit(
            name=unit.name, data_words=list(unit.data_words),
            required_helpers=set(unit.required_helpers),
        )

        for item in unit.items:
            if isinstance(item, LabelMarker):
                result.append(item)
                continue
            for rewritten in self._rewrite_instruction(item, allocation):
                result.append(rewritten)
        return result, allocation

    def _rewrite_instruction(self, instruction: Instruction,
                             allocation: RegisterAllocation) -> List[Instruction]:
        spec = instruction.spec
        pre: List[Instruction] = []
        post: List[Instruction] = []
        rewritten = instruction.copy()

        if "tb" in spec.operands and instruction.tb is not None:
            kind, _ = allocation.locate(instruction.tb)
            if kind == "reg":
                rewritten.tb = allocation.direct.get(instruction.tb, PHYS_ZERO)
            else:
                slot = allocation.spilled[instruction.tb]
                pre.extend(self._slot_load(PHYS_SCRATCH_B, slot))
                rewritten.tb = PHYS_SCRATCH_B

        if "ta" in spec.operands and instruction.ta is not None:
            kind, _ = allocation.locate(instruction.ta)
            if kind == "reg":
                rewritten.ta = allocation.direct.get(instruction.ta, PHYS_ZERO)
            else:
                slot = allocation.spilled[instruction.ta]
                if spec.is_jump:
                    raise TranslationError(
                        "the link register of a JAL/JALR was spilled; only x1/ra "
                        f"(or a discarded link) may receive return addresses: {instruction.render()}"
                    )
                if spec.reads_ta:
                    pre.extend(self._slot_load(PHYS_SCRATCH_A, slot))
                rewritten.ta = PHYS_SCRATCH_A
                if spec.writes_ta:
                    post.extend(self._slot_store(PHYS_SCRATCH_A, slot))

        return pre + [rewritten] + post
