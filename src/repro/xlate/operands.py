"""Operand conversion: legalising immediates for the ternary fields.

The ART-9 immediate fields are narrow (3 trits for ADDI/ANDI/LOAD/STORE,
4 for LUI, 5 for LI/JAL), so the binary immediates surviving the mapping
pass may not fit.  This pass rewrites any out-of-range immediate into a
LUI/LI constant construction in a translator temporary, plus the address /
operand arithmetic needed to keep the original semantics:

* ``ADDI rd, imm``            → ``LUI/LI tmp, imm`` ; ``ADD rd, tmp``
* ``LOAD rd, base, imm``      → ``LUI/LI tmp, imm`` ; ``ADD tmp, base`` ;
  ``LOAD rd, tmp, 0`` (and the STORE equivalent)
* ``ANDI rd, imm``            → constant construction + ternary ``AND``

Branch and jump immediates are *not* handled here: they stay symbolic until
the final layout pass, which re-computes and relaxes them (the paper's
"re-calculates the branch target addresses" step).
"""

from __future__ import annotations

from typing import List

from repro.isa.assembler import split_constant
from repro.isa.formats import imm_range
from repro.isa.instructions import Instruction
from repro.xlate.ir import LabelMarker, TranslationUnit, VirtualRegisterFile


def _fits(mnemonic: str, value: int) -> bool:
    lo, hi = imm_range(mnemonic)
    return lo <= value <= hi


def _constant_items(vreg: int, value: int) -> List[Instruction]:
    high, low = split_constant(value)
    return [Instruction("LUI", ta=vreg, imm=high), Instruction("LI", ta=vreg, imm=low)]


def convert_operands(unit: TranslationUnit, vregs: VirtualRegisterFile) -> TranslationUnit:
    """Return a new unit in which every numeric immediate fits its field."""
    result = TranslationUnit(
        name=unit.name, data_words=list(unit.data_words),
        required_helpers=set(unit.required_helpers),
    )

    for item in unit.items:
        if isinstance(item, LabelMarker):
            result.append(item)
            continue
        instruction = item
        mnemonic = instruction.mnemonic
        imm = instruction.imm

        # Symbolic targets (labels) are resolved by the layout pass.
        if imm is None or _fits(mnemonic, imm):
            result.append(instruction)
            continue

        temp = vregs.named_temp("operand_tmp")
        if mnemonic == "ADDI":
            result.extend(_constant_items(temp, imm))
            result.append(Instruction("ADD", ta=instruction.ta, tb=temp, source=instruction.source))
        elif mnemonic == "ANDI":
            result.extend(_constant_items(temp, imm))
            result.append(Instruction("AND", ta=instruction.ta, tb=temp, source=instruction.source))
        elif mnemonic in ("SRI", "SLI"):
            # Shift amounts are architecturally 0..8; anything larger clears
            # or saturates the word, so clamp to the field range.
            clamped = max(min(imm, 4), -4)
            result.append(instruction.copy(imm=clamped))
        elif mnemonic in ("LOAD", "STORE"):
            result.extend(_constant_items(temp, imm))
            result.append(Instruction("ADD", ta=temp, tb=instruction.tb, source=instruction.source))
            result.append(instruction.copy(tb=temp, imm=0))
        elif mnemonic in ("LUI", "LI"):
            # These are produced by split_constant and always fit; reaching
            # this branch means the constant itself was out of word range.
            raise ValueError(
                f"constant too large for the 9-trit datapath: {instruction.render()}"
            )
        elif mnemonic == "JALR":
            result.extend(_constant_items(temp, imm))
            result.append(Instruction("ADD", ta=temp, tb=instruction.tb, source=instruction.source))
            result.append(instruction.copy(tb=temp, imm=0))
        else:
            raise ValueError(
                f"do not know how to legalise the immediate of {instruction.render()}"
            )

    return result
