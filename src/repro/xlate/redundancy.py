"""Redundancy checking: removal of meaningless instructions.

The mapping, operand-conversion and register-renaming steps deliberately err
on the side of emitting too much code (extra moves, reloads of values that
are already in a register, identity operations).  This pass — the
"redundancy checking phase" of Fig. 2 — removes them again:

* identity operations (``MV Ta, Ta``, ``ADDI Ta, 0``);
* a LOAD that immediately re-reads the TDM slot written by the preceding
  STORE (replaced by a register move, or dropped entirely);
* identical back-to-back LOADs from the same address;
* locally dead register writes (a value overwritten before anyone reads it
  within the same basic block).

All rules are *local*: they never look past a label, branch, jump or memory
side effect that could make the transformation unsafe.  The pass iterates
until it reaches a fixed point.
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.instructions import Instruction
from repro.xlate.ir import LabelMarker, TranslationUnit


def _is_identity(instruction: Instruction) -> bool:
    """True for operations that provably leave the architectural state unchanged."""
    if instruction.mnemonic == "MV" and instruction.ta == instruction.tb:
        return True
    if instruction.mnemonic in ("ADDI", "SRI", "SLI") and (instruction.imm or 0) == 0:
        return True
    return False


def _same_memory_slot(a: Instruction, b: Instruction) -> bool:
    """True when two M-type instructions address the same TDM cell."""
    return a.tb == b.tb and (a.imm or 0) == (b.imm or 0)


def _block_boundary(item) -> bool:
    """True for items that end a basic block (labels and control transfers)."""
    if isinstance(item, LabelMarker):
        return True
    return item.spec.is_control or item.mnemonic == "HALT"


def _reads_register(instruction: Instruction, register: int) -> bool:
    """True when ``instruction`` observes the value of ``register``."""
    return register in instruction.sources()


def _writes_register(instruction: Instruction, register: Optional[int]) -> bool:
    """True when ``instruction`` overwrites ``register``."""
    return register is not None and instruction.destination() == register


def _pure_register_write(instruction: Instruction) -> bool:
    """True for instructions whose only effect is writing their Ta register."""
    spec = instruction.spec
    return spec.writes_ta and not (spec.is_load or spec.is_store or spec.is_control)


def _dead_write_indices(items: List) -> set:
    """Indices of locally dead register writes (overwritten before any read)."""
    dead = set()
    for index, item in enumerate(items):
        if isinstance(item, LabelMarker) or not _pure_register_write(item):
            continue
        destination = item.destination()
        if destination is None:
            continue
        for follower in items[index + 1:]:
            if _block_boundary(follower):
                break
            if _reads_register(follower, destination):
                break
            if _writes_register(follower, destination):
                dead.add(index)
                break
            if follower.spec.is_load and follower.destination() == destination:
                dead.add(index)
                break
    return dead


def _peephole_pass(items: List) -> List:
    """One bottom-up peephole sweep; returns the rewritten item list."""
    dead = _dead_write_indices(items)
    result: List = []
    index = 0
    while index < len(items):
        item = items[index]
        if isinstance(item, LabelMarker):
            result.append(item)
            index += 1
            continue

        if index in dead or _is_identity(item):
            index += 1
            continue

        nxt = items[index + 1] if index + 1 < len(items) else None
        if (
            item.mnemonic == "STORE"
            and isinstance(nxt, Instruction)
            and nxt.mnemonic == "LOAD"
            and _same_memory_slot(item, nxt)
        ):
            # The loaded value is exactly what was just stored.
            result.append(item)
            if nxt.ta != item.ta:
                result.append(Instruction("MV", ta=nxt.ta, tb=item.ta, source=nxt.source))
            index += 2
            continue

        if (
            item.mnemonic == "LOAD"
            and isinstance(nxt, Instruction)
            and nxt.mnemonic == "LOAD"
            and nxt.ta == item.ta
            and _same_memory_slot(item, nxt)
        ):
            result.append(item)
            index += 2
            continue

        result.append(item)
        index += 1
    return result


def remove_redundancies(unit: TranslationUnit, max_iterations: int = 10) -> TranslationUnit:
    """Run the peephole rules to a fixed point and return the reduced unit."""
    items = list(unit.items)
    for _ in range(max_iterations):
        rewritten = _peephole_pass(items)
        if len(rewritten) == len(items):
            items = rewritten
            break
        items = rewritten
    return TranslationUnit(
        items=items,
        name=unit.name,
        data_words=list(unit.data_words),
        required_helpers=set(unit.required_helpers),
    )
