"""Intermediate representation used between the translation passes.

The passes of the software-level framework operate on a
:class:`TranslationUnit`: a flat stream of items, where an item is either a
:class:`LabelMarker` or an ART-9 :class:`~repro.isa.instructions.Instruction`
whose register fields hold *virtual* register numbers.

Virtual register space
----------------------

====================  =========================================================
0 .. 31               the RV-32 architectural registers x0..x31
32 ..                 temporaries created by the mapping / operand passes
====================  =========================================================

The register-renaming pass (:mod:`repro.xlate.regalloc`) later maps every
virtual register either onto one of the nine physical ternary registers or
onto a TDM spill slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Union

from repro.isa.instructions import Instruction

#: Virtual register numbers of the RV architectural registers.
V_ZERO = 0
V_RA = 1
V_SP = 2
V_A0 = 10

#: First virtual register number available for translator temporaries.
FIRST_TEMP_VREG = 32


@dataclass(frozen=True)
class LabelMarker:
    """A label definition sitting between instructions in the item stream."""

    name: str


Item = Union[LabelMarker, Instruction]


class VirtualRegisterFile:
    """Allocates fresh virtual registers for translator temporaries."""

    def __init__(self, first: int = FIRST_TEMP_VREG):
        self._next = first
        self.named: dict = {}

    def new_temp(self) -> int:
        """Return a fresh virtual register number."""
        register = self._next
        self._next += 1
        return register

    def named_temp(self, name: str) -> int:
        """Return a stable virtual register for ``name`` (created on demand).

        Used for the runtime-library argument/return/link registers, which
        must be the same virtual register at every call site and inside the
        helper bodies.
        """
        if name not in self.named:
            self.named[name] = self.new_temp()
        return self.named[name]

    @property
    def highest_used(self) -> int:
        """Highest virtual register number handed out so far."""
        return self._next - 1


@dataclass
class TranslationUnit:
    """The item stream shared by all translation passes."""

    items: List[Item] = field(default_factory=list)
    name: str = "translated"
    #: Initial TDM words copied verbatim from the RV data section
    #: (word ``i`` of the RV data section lives at TDM address ``4 * i``,
    #: preserving the byte-address arithmetic of the original program).
    data_words: List[int] = field(default_factory=list)
    #: Set of runtime helpers (label names) the mapped code calls.
    required_helpers: set = field(default_factory=set)

    def append(self, item: Item) -> None:
        """Append one label or instruction."""
        self.items.append(item)

    def extend(self, items) -> None:
        """Append several items."""
        self.items.extend(items)

    def instructions(self) -> Iterator[Instruction]:
        """Iterate over the instructions, skipping label markers."""
        for item in self.items:
            if isinstance(item, Instruction):
                yield item

    def instruction_count(self) -> int:
        """Number of instructions currently in the stream."""
        return sum(1 for _ in self.instructions())

    def labels(self) -> List[str]:
        """Names of all labels defined in the stream."""
        return [item.name for item in self.items if isinstance(item, LabelMarker)]

    def listing(self) -> str:
        """Debug listing of the item stream (virtual register numbers)."""
        lines = []
        for item in self.items:
            if isinstance(item, LabelMarker):
                lines.append(f"{item.name}:")
            else:
                operands = []
                for kind in item.spec.operands:
                    if kind == "ta":
                        operands.append(f"v{item.ta}")
                    elif kind == "tb":
                        operands.append(f"v{item.tb}")
                    elif kind == "branch_trit":
                        operands.append(str(item.branch_trit))
                    elif kind == "imm":
                        operands.append(item.label if item.label else str(item.imm))
                lines.append(f"    {item.mnemonic} " + ", ".join(operands))
        return "\n".join(lines)
