"""Ternary runtime library appended to translated programs.

The ART-9 ISA has no multiply, divide or binary-shift instructions (Table II
explicitly notes the missing multiplier), so the instruction-mapping pass
lowers the RV-32 ``mul``/``div``/``rem`` instructions and variable binary
shifts into calls to the small runtime library defined here.  The helpers
are emitted in the same virtual-register IR as the mapped user code, so the
later renaming/spilling and redundancy passes treat them like any other
code.

Calling convention (virtual registers, see :class:`VirtualRegisterFile`):

* ``helper_arg0`` / ``helper_arg1`` — input operands
* ``helper_ret`` — primary result (product / quotient / shifted value)
* ``helper_ret2`` — secondary result (remainder, from ``__t_div``)
* ``helper_link`` — return address; pinned to a physical register by the
  register allocator because a spilled link register cannot be written back
  after the jump.

Algorithms
----------

``__t_mul``
    Trit-serial multiply: per iteration the lowest trit of the multiplier is
    extracted as ``b - 3 * (b >> 1)`` (exact in balanced ternary because the
    single-trit right shift rounds to nearest), the multiplicand is added or
    subtracted accordingly, then the multiplicand is tripled and the
    multiplier shifted.  At most 9 iterations.
``__t_div``
    Shift-and-subtract division by repeated doubling of the divisor, with
    explicit sign handling so the quotient truncates toward zero and the
    remainder takes the dividend's sign (the RV-32M convention).
``__t_sll``
    Left shift by a variable amount, i.e. multiplication by ``2**n`` through
    repeated doubling.
"""

from __future__ import annotations

from typing import List

from repro.isa.instructions import Instruction
from repro.xlate.ir import LabelMarker, TranslationUnit, VirtualRegisterFile, V_ZERO

#: Helper entry labels, keyed by the short name used in ``required_helpers``.
HELPER_LABELS = {
    "mul": "__t_mul",
    "div": "__t_div",
    "sll": "__t_sll",
}


class _Builder:
    """Tiny convenience wrapper for emitting virtual-register instructions."""

    def __init__(self, vregs: VirtualRegisterFile):
        self.items: List = []
        self.vregs = vregs

    def label(self, name: str) -> None:
        self.items.append(LabelMarker(name))

    def emit(self, mnemonic: str, **fields) -> None:
        self.items.append(Instruction(mnemonic, **fields))

    def reg(self, name: str) -> int:
        return self.vregs.named_temp(name)


def _emit_mul(builder: _Builder) -> None:
    reg = builder.reg
    arg0, arg1 = reg("helper_arg0"), reg("helper_arg1")
    ret, link = reg("helper_ret"), reg("helper_link")
    discard = reg("discard")
    # The argument registers double as the working multiplicand/multiplier to
    # keep the helper's register pressure low (they are dead after the call).
    a, b = arg0, arg1
    h, r, c = reg("helper_t0"), reg("helper_t1"), reg("helper_t2")

    builder.label("__t_mul")
    builder.emit("MV", ta=ret, tb=V_ZERO)
    builder.label("__t_mul_loop")
    builder.emit("MV", ta=c, tb=b)
    builder.emit("COMP", ta=c, tb=V_ZERO)
    builder.emit("BEQ", tb=c, branch_trit=0, label="__t_mul_done")
    # h = b >> 1 (round-to-nearest third), r = b - 3h  (the lowest trit of b)
    builder.emit("MV", ta=h, tb=b)
    builder.emit("SRI", ta=h, imm=1)
    builder.emit("MV", ta=r, tb=h)
    builder.emit("SLI", ta=r, imm=1)
    builder.emit("STI", ta=r, tb=r)
    builder.emit("ADD", ta=r, tb=b)
    builder.emit("BNE", tb=r, branch_trit=1, label="__t_mul_try_sub")
    builder.emit("ADD", ta=ret, tb=a)
    builder.label("__t_mul_try_sub")
    builder.emit("BNE", tb=r, branch_trit=-1, label="__t_mul_next")
    builder.emit("SUB", ta=ret, tb=a)
    builder.label("__t_mul_next")
    builder.emit("SLI", ta=a, imm=1)
    builder.emit("MV", ta=b, tb=h)
    builder.emit("JAL", ta=discard, label="__t_mul_loop")
    builder.label("__t_mul_done")
    builder.emit("JALR", ta=discard, tb=link, imm=0)


def _emit_div(builder: _Builder) -> None:
    reg = builder.reg
    arg0, arg1 = reg("helper_arg0"), reg("helper_arg1")
    ret, ret2, link = reg("helper_ret"), reg("helper_ret2"), reg("helper_link")
    discard = reg("discard")
    # Reuse the argument registers as the working dividend/divisor and share
    # the generic helper temporaries with the other runtime routines.
    a, b = reg("div_a"), arg1
    q = reg("helper_ret")
    t, t2, m, c = reg("helper_t0"), reg("helper_t1"), reg("helper_t2"), reg("helper_t3")
    sign, rsign = reg("helper_t4"), reg("helper_t5")

    builder.label("__t_div")
    builder.emit("MV", ta=sign, tb=V_ZERO)
    builder.emit("ADDI", ta=sign, imm=1)
    builder.emit("MV", ta=rsign, tb=V_ZERO)
    builder.emit("ADDI", ta=rsign, imm=1)
    builder.emit("MV", ta=a, tb=arg0)
    # Normalise the dividend sign.
    builder.emit("MV", ta=c, tb=a)
    builder.emit("COMP", ta=c, tb=V_ZERO)
    builder.emit("BNE", tb=c, branch_trit=-1, label="__t_div_a_pos")
    builder.emit("STI", ta=a, tb=a)
    builder.emit("STI", ta=sign, tb=sign)
    builder.emit("STI", ta=rsign, tb=rsign)
    builder.label("__t_div_a_pos")
    # Normalise the divisor sign.
    builder.emit("MV", ta=c, tb=b)
    builder.emit("COMP", ta=c, tb=V_ZERO)
    builder.emit("BNE", tb=c, branch_trit=-1, label="__t_div_b_pos")
    builder.emit("STI", ta=b, tb=b)
    builder.emit("STI", ta=sign, tb=sign)
    builder.label("__t_div_b_pos")
    builder.emit("MV", ta=q, tb=V_ZERO)
    # Division by zero follows the RV-32M convention: quotient -1, remainder a.
    builder.emit("MV", ta=c, tb=b)
    builder.emit("COMP", ta=c, tb=V_ZERO)
    builder.emit("BEQ", tb=c, branch_trit=0, label="__t_div_by_zero")
    builder.label("__t_div_outer")
    builder.emit("MV", ta=c, tb=a)
    builder.emit("COMP", ta=c, tb=b)
    builder.emit("BEQ", tb=c, branch_trit=-1, label="__t_div_done")
    builder.emit("MV", ta=t, tb=b)
    builder.emit("MV", ta=m, tb=V_ZERO)
    builder.emit("ADDI", ta=m, imm=1)
    builder.label("__t_div_inner")
    builder.emit("MV", ta=t2, tb=t)
    builder.emit("ADD", ta=t2, tb=t)
    builder.emit("MV", ta=c, tb=t2)
    builder.emit("COMP", ta=c, tb=a)
    builder.emit("BEQ", tb=c, branch_trit=1, label="__t_div_inner_done")
    builder.emit("MV", ta=t, tb=t2)
    builder.emit("ADD", ta=m, tb=m)
    builder.emit("JAL", ta=discard, label="__t_div_inner")
    builder.label("__t_div_inner_done")
    builder.emit("SUB", ta=a, tb=t)
    builder.emit("ADD", ta=q, tb=m)
    builder.emit("JAL", ta=discard, label="__t_div_outer")
    builder.label("__t_div_done")
    builder.emit("BNE", tb=sign, branch_trit=-1, label="__t_div_qpos")
    builder.emit("STI", ta=q, tb=q)
    builder.label("__t_div_qpos")
    builder.emit("BNE", tb=rsign, branch_trit=-1, label="__t_div_rpos")
    builder.emit("STI", ta=a, tb=a)
    builder.label("__t_div_rpos")
    builder.emit("MV", ta=ret, tb=q)
    builder.emit("MV", ta=ret2, tb=a)
    builder.emit("JALR", ta=discard, tb=link, imm=0)
    builder.label("__t_div_by_zero")
    builder.emit("MV", ta=ret, tb=V_ZERO)
    builder.emit("ADDI", ta=ret, imm=-1)
    builder.emit("MV", ta=ret2, tb=arg0)
    builder.emit("JALR", ta=discard, tb=link, imm=0)


def _emit_sll(builder: _Builder) -> None:
    reg = builder.reg
    arg0, arg1 = reg("helper_arg0"), reg("helper_arg1")
    ret, link = reg("helper_ret"), reg("helper_link")
    discard = reg("discard")
    # The shift count is consumed in place; only one extra temporary is needed.
    n, c = arg1, reg("helper_t0")

    builder.label("__t_sll")
    builder.emit("MV", ta=ret, tb=arg0)
    builder.label("__t_sll_loop")
    builder.emit("MV", ta=c, tb=n)
    builder.emit("COMP", ta=c, tb=V_ZERO)
    builder.emit("BEQ", tb=c, branch_trit=0, label="__t_sll_done")
    builder.emit("BEQ", tb=c, branch_trit=-1, label="__t_sll_done")
    builder.emit("ADD", ta=ret, tb=ret)
    builder.emit("ADDI", ta=n, imm=-1)
    builder.emit("JAL", ta=discard, label="__t_sll_loop")
    builder.label("__t_sll_done")
    builder.emit("JALR", ta=discard, tb=link, imm=0)


_EMITTERS = {
    "mul": _emit_mul,
    "div": _emit_div,
    "sll": _emit_sll,
}


def append_runtime_helpers(unit: TranslationUnit, vregs: VirtualRegisterFile) -> None:
    """Append the runtime helpers named in ``unit.required_helpers``.

    Helpers are appended after the translated user code so that straight-line
    execution never falls into them; every entry is only reachable through an
    explicit JAL emitted by the mapping pass.
    """
    for name in sorted(unit.required_helpers):
        if name not in _EMITTERS:
            raise ValueError(f"unknown runtime helper {name!r}")
        builder = _Builder(vregs)
        _EMITTERS[name](builder)
        unit.extend(builder.items)
