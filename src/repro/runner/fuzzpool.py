"""Parallel backend for the differential fuzzing harness.

Splits a seed range into contiguous chunks, fans them out over the same
``multiprocessing`` pool machinery the sweep orchestrator uses, and merges
the per-chunk :class:`FuzzReport` objects.  Chunking by seed keeps every
failure reproducible exactly as in the serial harness (the report names the
generator seed), and merging in seed order makes the combined report
independent of worker scheduling.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional

from repro.runner.worker import execute_fuzz_chunk
from repro.testing import FuzzReport, fuzz, fuzz_batched

#: Chunks handed out per worker; small enough to balance, large enough to
#: amortise the per-chunk generator warm-up.
CHUNKS_PER_WORKER = 4


def _chunks(count: int, seed: int, jobs: int, max_instructions: int,
            check_pipeline: bool, machine: Optional[str] = None,
            batch_lanes: int = 0) -> List[dict]:
    target = max(1, min(count, jobs * CHUNKS_PER_WORKER))
    base, extra = divmod(count, target)
    chunks = []
    next_seed = seed
    for index in range(target):
        size = base + (1 if index < extra else 0)
        if size == 0:
            continue
        chunk = {
            "seed": next_seed,
            "count": size,
            "max_instructions": max_instructions,
            "check_pipeline": check_pipeline,
        }
        if machine is not None:
            chunk["machine"] = machine
        if batch_lanes > 1:
            chunk["batch_lanes"] = batch_lanes
        chunks.append(chunk)
        next_seed += size
    return chunks


def _merge(reports: List[FuzzReport]) -> FuzzReport:
    # ``pool.map`` returns chunk reports in submission order and chunks are
    # built in ascending seed order, so plain concatenation reproduces the
    # serial harness's failure order exactly.
    merged = FuzzReport()
    for report in reports:
        merged.programs_run += report.programs_run
        merged.instructions_executed += report.instructions_executed
        merged.budget_exhausted += report.budget_exhausted
        merged.failures.extend(report.failures)
    return merged


def run_parallel_fuzz(
    count: int = 100,
    seed: int = 0,
    jobs: int = 1,
    max_instructions: int = 200_000,
    check_pipeline: bool = True,
    machine: Optional[str] = None,
    batch_lanes: int = 0,
) -> FuzzReport:
    """Fuzz ``count`` seeds starting at ``seed`` across ``jobs`` processes.

    ``jobs <= 1`` falls back to the serial harness; the merged parallel
    report covers the identical seed set ``seed .. seed+count-1``.
    ``machine`` selects the microarchitecture config every engine in the
    differential harness is built with (default: the paper machine).
    ``batch_lanes > 1`` runs each seed's program as that many data-variant
    lanes through the batched differential harness
    (:func:`repro.testing.fuzz_batched`) instead of the serial five-way.
    """
    if jobs <= 1 or count <= 1:
        if batch_lanes > 1:
            return fuzz_batched(count=count, seed=seed,
                                lanes=batch_lanes,
                                max_instructions=max_instructions,
                                check_stats=check_pipeline,
                                machine=machine)
        return fuzz(count=count, seed=seed,
                    max_instructions=max_instructions,
                    check_pipeline=check_pipeline,
                    machine=machine)
    chunks = _chunks(count, seed, jobs, max_instructions, check_pipeline,
                     machine, batch_lanes)
    with multiprocessing.Pool(processes=jobs) as pool:
        reports = pool.map(execute_fuzz_chunk, chunks)
    return _merge(reports)
