"""Sweep orchestrator: expand the grid, pick a backend, stream the results.

``run_sweep`` is the one entry point: it expands a :class:`SweepSpec` into
content-addressed jobs, drops every job the run directory already holds an
``ok`` record for (resume), then hands the remainder to an execution
backend (:mod:`repro.service.backends`):

* the default backend reproduces the historical behaviour — inline when
  ``jobs <= 1``, a ``multiprocessing`` pool of persistent workers
  otherwise (:mod:`repro.runner.worker` caches translated programs per
  process);
* any other :class:`~repro.service.backends.ExecutionBackend` — notably
  the distributed :class:`~repro.service.queue_backend.AsyncQueueBackend`
  — can be passed explicitly and sees exactly the same jobs.

Finished records are appended to the JSONL store as they arrive no matter
which backend runs them, so interrupting a sweep at any point loses at
most the in-flight jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.runner.spec import SweepSpec
from repro.runner.store import RunStore

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.service.backends import ExecutionBackend

#: Callback invoked with each finished record (CLI progress, tests).
ProgressFn = Callable[[dict], None]


@dataclass
class SweepOutcome:
    """What one ``run_sweep`` call did."""

    run_dir: str
    total_jobs: int
    executed: int
    skipped: int
    records: List[dict] = field(default_factory=list)

    @property
    def failures(self) -> List[dict]:
        """Records that errored or failed result verification."""
        return [
            record for record in self.records
            if record.get("status") != "ok" or not record.get("verified", False)
        ]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"sweep: {self.total_jobs} jobs ({self.executed} executed, "
            f"{self.skipped} resumed from {self.run_dir}), {status}"
        )


def run_sweep(
    spec: SweepSpec,
    out_dir: str,
    jobs: int = 1,
    resume: bool = True,
    progress: Optional[ProgressFn] = None,
    backend: Optional["ExecutionBackend"] = None,
) -> SweepOutcome:
    """Execute (or resume) the sweep described by ``spec`` into ``out_dir``.

    ``backend`` selects the execution strategy; ``None`` keeps the
    historical default (inline for ``jobs <= 1``, else a
    ``multiprocessing`` pool of ``jobs`` workers).  With ``resume`` (the
    default) jobs whose IDs already have successful records in ``out_dir``
    are skipped; ``resume=False`` wipes the store first.
    """
    store = RunStore(out_dir)
    if not resume:
        store.reset()
    store.initialize(spec)

    all_jobs = spec.expand()
    done = store.completed_ids()
    pending = [job for job in all_jobs if job.job_id not in done]

    executed: List[dict] = []

    def finish(record: dict) -> None:
        store.append(record)
        executed.append(record)
        if progress is not None:
            progress(record)

    if pending:
        if backend is None:
            from repro.service.backends import default_backend
            backend = default_backend(jobs)
        backend.execute(pending, finish)

    store.write_summary()
    return SweepOutcome(
        run_dir=out_dir,
        total_jobs=len(all_jobs),
        executed=len(executed),
        skipped=len(all_jobs) - len(pending),
        records=store.records(),
    )


def list_jobs(spec: SweepSpec, out_dir: Optional[str] = None) -> List[dict]:
    """Expanded jobs of ``spec`` with their store status (for ``--list``)."""
    done = RunStore(out_dir).completed_ids() if out_dir else set()
    rows = []
    for job in spec.expand():
        rows.append({
            "job_id": job.job_id,
            "label": job.label,
            "status": "done" if job.job_id in done else "pending",
            **job.to_dict(),
        })
    return rows
