"""Sweep orchestrator: expand the grid, shard it, stream the results.

``run_sweep`` is the one entry point: it expands a :class:`SweepSpec` into
content-addressed jobs, drops every job the run directory already holds an
``ok`` record for (resume), then executes the remainder either inline
(``jobs <= 1``) or across a ``multiprocessing`` pool of persistent workers
(:mod:`repro.runner.worker` caches translated programs per process).
Finished records are appended to the JSONL store as they arrive, so
interrupting a sweep at any point loses at most the in-flight jobs.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.runner.spec import SweepJob, SweepSpec
from repro.runner.store import RunStore
from repro.runner.worker import execute_job

#: Callback invoked with each finished record (CLI progress, tests).
ProgressFn = Callable[[dict], None]


@dataclass
class SweepOutcome:
    """What one ``run_sweep`` call did."""

    run_dir: str
    total_jobs: int
    executed: int
    skipped: int
    records: List[dict] = field(default_factory=list)

    @property
    def failures(self) -> List[dict]:
        """Records that errored or failed result verification."""
        return [
            record for record in self.records
            if record.get("status") != "ok" or not record.get("verified", False)
        ]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"sweep: {self.total_jobs} jobs ({self.executed} executed, "
            f"{self.skipped} resumed from {self.run_dir}), {status}"
        )


def run_sweep(
    spec: SweepSpec,
    out_dir: str,
    jobs: int = 1,
    resume: bool = True,
    progress: Optional[ProgressFn] = None,
) -> SweepOutcome:
    """Execute (or resume) the sweep described by ``spec`` into ``out_dir``.

    ``jobs`` is the worker-process count; ``jobs <= 1`` runs inline in this
    process (same code path, same caches — just no pool).  With ``resume``
    (the default) jobs whose IDs already have successful records in
    ``out_dir`` are skipped; ``resume=False`` wipes the store first.
    """
    store = RunStore(out_dir)
    if not resume:
        store.reset()
    store.initialize(spec)

    all_jobs = spec.expand()
    done = store.completed_ids()
    pending = [job for job in all_jobs if job.job_id not in done]

    executed: List[dict] = []

    def finish(record: dict) -> None:
        store.append(record)
        executed.append(record)
        if progress is not None:
            progress(record)

    if len(pending) and jobs > 1:
        # The pool never outlives the call; workers stay warm across all the
        # jobs of this run, which is where the per-process translation cache
        # pays off.  chunksize=1 keeps the shards balanced — job costs vary
        # by orders of magnitude across the grid (fast vs pipeline engine).
        with multiprocessing.Pool(processes=jobs) as pool:
            for record in pool.imap_unordered(execute_job, pending, chunksize=1):
                finish(record)
    else:
        for job in pending:
            finish(execute_job(job))

    store.write_summary()
    return SweepOutcome(
        run_dir=out_dir,
        total_jobs=len(all_jobs),
        executed=len(executed),
        skipped=len(all_jobs) - len(pending),
        records=store.records(),
    )


def list_jobs(spec: SweepSpec, out_dir: Optional[str] = None) -> List[dict]:
    """Expanded jobs of ``spec`` with their store status (for ``--list``)."""
    done = RunStore(out_dir).completed_ids() if out_dir else set()
    rows = []
    for job in spec.expand():
        rows.append({
            "job_id": job.job_id,
            "label": job.label,
            "status": "done" if job.job_id in done else "pending",
            **job.to_dict(),
        })
    return rows
