"""Structured result store for sweep runs: spec.json + results.jsonl.

One run lives in one directory::

    <run>/spec.json       the expanded-from SweepSpec (resume identity)
    <run>/results.jsonl   one JSON record per finished job, append-only
    <run>/summary.txt     human-readable table, rewritten after each run

Records are flushed line-by-line as jobs finish, so a killed run loses at
most the job that was in flight; :meth:`RunStore.records` tolerates a
truncated final line for exactly that reason.  Resume semantics fall out of
the content-addressed job IDs: a rerun skips every ``job_id`` that already
has an ``ok`` record.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import tempfile
from typing import Dict, List, Optional, Set

from repro.runner.spec import SweepSpec

logger = logging.getLogger(__name__)

SPEC_FILENAME = "spec.json"
RESULTS_FILENAME = "results.jsonl"
SUMMARY_FILENAME = "summary.txt"

#: Record fields that legitimately differ between two executions of the
#: same job (wall clock, scheduling, cache temperature): excluded from run
#: comparison and from the canonical form used by cross-backend
#: conformance and DB dedup.  ``timings`` (the per-phase breakdown) and
#: ``cache_hit`` are observations about *how* a job ran, never about what
#: it computed, so they are volatile by construction.
VOLATILE_RECORD_FIELDS = ("elapsed_s", "worker_pid", "timings", "cache_hit")


def canonical_record(record: dict) -> str:
    """Deterministic JSON form of a record with volatile fields stripped.

    Two executions of the same job on any backend (serial, pool, or the
    distributed queue) must canonicalise identically; the conformance suite
    and the :class:`~repro.service.resultsdb.ResultsDB` duplicate counter
    are both built on that invariant.
    """
    stable = {key: value for key, value in record.items()
              if key not in VOLATILE_RECORD_FIELDS}
    return json.dumps(stable, sort_keys=True, separators=(",", ":"))


class StoreError(RuntimeError):
    """Raised for inconsistent run directories (e.g. spec mismatch on resume)."""


class RunStore:
    """Filesystem-backed store of one sweep run."""

    def __init__(self, root: str):
        self.root = root

    # -- paths --------------------------------------------------------------

    @property
    def spec_path(self) -> str:
        return os.path.join(self.root, SPEC_FILENAME)

    @property
    def results_path(self) -> str:
        return os.path.join(self.root, RESULTS_FILENAME)

    @property
    def summary_path(self) -> str:
        return os.path.join(self.root, SUMMARY_FILENAME)

    def exists(self) -> bool:
        """True when the directory already holds a run."""
        return os.path.exists(self.spec_path)

    # -- lifecycle ----------------------------------------------------------

    def initialize(self, spec: SweepSpec) -> None:
        """Create the run directory, or check ``spec`` against an existing run.

        Resuming with a *different* spec would silently mix two grids in one
        results file, so that is an error; delete the directory (or pass a
        fresh ``--out``) to start over.
        """
        os.makedirs(self.root, exist_ok=True)
        if self.exists():
            existing = self.load_spec()
            if existing.to_dict() != spec.to_dict():
                raise StoreError(
                    f"run directory {self.root!r} holds a different sweep spec; "
                    "use a fresh --out directory (or delete this one) to change the grid"
                )
            return
        with open(self.spec_path, "w", encoding="utf-8") as handle:
            json.dump(spec.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def load_spec(self) -> SweepSpec:
        """Read back the spec this run was expanded from."""
        with open(self.spec_path, "r", encoding="utf-8") as handle:
            return SweepSpec.from_dict(json.load(handle))

    def reset(self) -> None:
        """Drop all results (keeps the directory; used by ``--no-resume``)."""
        for path in (self.spec_path, self.results_path, self.summary_path):
            if os.path.exists(path):
                os.remove(path)

    # -- records ------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Append one job record and flush it to disk immediately."""
        # A killed run can leave a truncated final line with no newline; seal
        # it off first so the new record does not concatenate onto it (the
        # torn line is then skipped by ``records`` instead of eating both).
        needs_newline = False
        if os.path.exists(self.results_path):
            with open(self.results_path, "rb") as existing:
                existing.seek(0, os.SEEK_END)
                if existing.tell() > 0:
                    existing.seek(-1, os.SEEK_END)
                    needs_newline = existing.read(1) != b"\n"
        with open(self.results_path, "a", encoding="utf-8") as handle:
            if needs_newline:
                handle.write("\n")
            handle.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())

    def records(self) -> List[dict]:
        """All parseable records, newest occurrence of each job winning.

        A truncated trailing line (from a killed run) is skipped rather than
        raised, so an interrupted sweep stays resumable.
        """
        if not os.path.exists(self.results_path):
            return []
        by_job: Dict[str, dict] = {}
        order: List[str] = []
        with open(self.results_path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    logger.warning(
                        "skipping torn record on line %d of %s "
                        "(partial write from an interrupted run)",
                        lineno, self.results_path)
                    continue
                if not isinstance(record, dict):
                    logger.warning(
                        "skipping non-record JSON on line %d of %s",
                        lineno, self.results_path)
                    continue
                job_id = record.get("job_id")
                if not job_id:
                    logger.warning(
                        "skipping record without a job_id on line %d of %s",
                        lineno, self.results_path)
                    continue
                if job_id not in by_job:
                    order.append(job_id)
                by_job[job_id] = record
        return [by_job[job_id] for job_id in order]

    def completed_ids(self) -> Set[str]:
        """Job IDs that finished successfully (errors are retried on resume)."""
        return {
            record["job_id"] for record in self.records()
            if record.get("status") == "ok"
        }

    # -- reporting ----------------------------------------------------------

    def summary_table(self, records: Optional[List[dict]] = None) -> str:
        """Fixed-width results table, one row per job."""
        records = self.records() if records is None else records
        header = (
            f"{'workload':24s} {'engine':8s} {'opt':3s} {'cycles':>12s} "
            f"{'CPI':>7s} {'stalls':>8s} {'ok':>3s}"
        )
        lines = [header, "-" * len(header)]
        def sort_key(record):
            return (record.get("workload", ""), str(record.get("params", {})),
                    record.get("engine", ""), not record.get("optimize", False))
        for record in sorted(records, key=sort_key):
            params = record.get("params") or {}
            name = record.get("workload", "?")
            if params:
                name += "[" + ",".join(f"{k}={v}" for k, v in sorted(params.items())) + "]"
            if record.get("status") != "ok":
                lines.append(
                    f"{name:24s} {record.get('engine', '?'):8s} "
                    f"{'on' if record.get('optimize') else 'off':3s} "
                    f"ERROR: {record.get('error', 'unknown')}"
                )
                continue
            lines.append(
                f"{name:24s} {record.get('engine', '?'):8s} "
                f"{'on' if record.get('optimize') else 'off':3s} "
                f"{record.get('cycles', 0):>12d} {record.get('cpi', 0.0):>7.3f} "
                f"{record.get('stall_cycles', 0):>8d} "
                f"{'yes' if record.get('verified') else 'NO':>3s}"
            )
        return "\n".join(lines)

    def write_summary(self) -> str:
        """Rewrite ``summary.txt`` from the current records; returns the table.

        The rewrite is atomic (same-directory tempfile + ``os.replace``,
        the :class:`~repro.cache.ArtifactCache` pattern): a crash mid-write
        leaves either the previous summary or the new one, never a torn
        half-table shadowing a complete ``results.jsonl``.
        """
        table = self.summary_table()
        fd, tmp_path = tempfile.mkstemp(
            dir=self.root, prefix=SUMMARY_FILENAME + ".", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(table)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.summary_path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.remove(tmp_path)
            raise
        return table
