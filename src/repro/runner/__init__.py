"""Batch execution layer: sharded sweeps over the evaluation grid.

The paper's evaluation is a grid — every workload crossed with every
implementation target — and this package is the machinery that runs such
grids at scale:

* :mod:`repro.runner.spec` — declarative sweep specifications expanded
  into pure-data jobs with deterministic, content-addressed IDs; the
  ``engine`` axis covers the ART-9 engines *and* the baseline cores
  (``picorv32``, ``vexriscv``, ``armv6m``), plus named preset grids;
* :mod:`repro.runner.worker` — persistent worker processes that cache
  translated programs and turn job specs into plain-dict result records;
* :mod:`repro.runner.store` — the JSONL result store (append-only,
  crash-tolerant) plus the human-readable summary table;
* :mod:`repro.runner.orchestrator` — ``run_sweep``: expansion, resume
  filtering, result streaming through a pluggable execution backend
  (:mod:`repro.service.backends` — serial, multiprocessing pool, or the
  distributed TCP queue);
* :mod:`repro.runner.compare` — diffing two runs (cycles, CPI, stalls,
  architectural-state digests) for regression hunting;
* :mod:`repro.runner.fuzzpool` — the parallel backend of ``art9 fuzz``.

Everything is exposed through ``art9 sweep`` (and ``art9 fuzz --jobs``) on
the command line; the distributed/aggregation layer above this one lives
in :mod:`repro.service` (``art9 serve`` / ``work`` / ``report``).
"""

from repro.runner.compare import CompareReport, JobDiff, compare_runs, diff_records
from repro.runner.fuzzpool import run_parallel_fuzz
from repro.runner.orchestrator import SweepOutcome, list_jobs, run_sweep
from repro.runner.spec import (
    ALL_ENGINES,
    BASELINE_ENGINES,
    DEFAULT_MAX_CYCLES,
    SWEEP_PRESETS,
    SpecError,
    SweepJob,
    SweepSpec,
    preset_spec,
)
from repro.runner.store import (
    RunStore,
    StoreError,
    VOLATILE_RECORD_FIELDS,
    canonical_record,
)
from repro.runner.worker import (
    batch_group_key,
    batchable_groups,
    execute_job,
    execute_job_batch,
)

__all__ = [
    "CompareReport",
    "JobDiff",
    "compare_runs",
    "diff_records",
    "run_parallel_fuzz",
    "SweepOutcome",
    "list_jobs",
    "run_sweep",
    "ALL_ENGINES",
    "BASELINE_ENGINES",
    "DEFAULT_MAX_CYCLES",
    "SWEEP_PRESETS",
    "SpecError",
    "SweepJob",
    "SweepSpec",
    "preset_spec",
    "RunStore",
    "StoreError",
    "VOLATILE_RECORD_FIELDS",
    "canonical_record",
    "batch_group_key",
    "batchable_groups",
    "execute_job",
    "execute_job_batch",
]
