"""Batch execution layer: sharded sweeps over the evaluation grid.

The paper's evaluation is a grid — every workload crossed with every
implementation target — and this package is the machinery that runs such
grids at scale:

* :mod:`repro.runner.spec` — declarative sweep specifications expanded
  into pure-data jobs with deterministic, content-addressed IDs;
* :mod:`repro.runner.worker` — persistent worker processes that cache
  translated programs and turn job specs into plain-dict result records;
* :mod:`repro.runner.store` — the JSONL result store (append-only,
  crash-tolerant) plus the human-readable summary table;
* :mod:`repro.runner.orchestrator` — ``run_sweep``: expansion, resume
  filtering, sharding across a ``multiprocessing`` pool, result streaming;
* :mod:`repro.runner.compare` — diffing two runs (cycles, CPI, stalls,
  architectural-state digests) for regression hunting;
* :mod:`repro.runner.fuzzpool` — the parallel backend of ``art9 fuzz``.

Everything is exposed through ``art9 sweep`` (and ``art9 fuzz --jobs``) on
the command line.
"""

from repro.runner.compare import CompareReport, JobDiff, compare_runs
from repro.runner.fuzzpool import run_parallel_fuzz
from repro.runner.orchestrator import SweepOutcome, list_jobs, run_sweep
from repro.runner.spec import DEFAULT_MAX_CYCLES, SpecError, SweepJob, SweepSpec
from repro.runner.store import RunStore, StoreError
from repro.runner.worker import execute_job

__all__ = [
    "CompareReport",
    "JobDiff",
    "compare_runs",
    "run_parallel_fuzz",
    "SweepOutcome",
    "list_jobs",
    "run_sweep",
    "DEFAULT_MAX_CYCLES",
    "SpecError",
    "SweepJob",
    "SweepSpec",
    "RunStore",
    "StoreError",
    "execute_job",
]
