"""Declarative sweep specifications and deterministic job identities.

A :class:`SweepSpec` describes an evaluation grid the way the paper's
tables do — workloads crossed with execution engines crossed with the
translator's optimize pass, each workload optionally in several size/seed
variants — without saying anything about *how* it runs.  ``expand()`` turns
the grid into flat :class:`SweepJob` records: pure picklable data with a
content-addressed ``job_id``, which is what makes sharding across worker
processes and resuming interrupted runs trivial (a job's identity never
depends on enumeration order, timestamps or host state).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.framework.hwflow import SIMULATION_ENGINES
from repro.framework.swflow import frozen_params as _frozen_params
from repro.sim.machine import DEFAULT_MACHINE_NAME, MACHINES, machine_names
from repro.workloads import all_workloads

#: Default per-job cycle budget (matches ``HardwareFramework.simulate``).
DEFAULT_MAX_CYCLES = 50_000_000

#: Baseline-core values of the ``engine`` axis.  These run the *RV-32*
#: side of a workload through the paper's baseline cycle/code-size models
#: (:mod:`repro.baselines`) instead of simulating the translated ART-9
#: program, so cross-ISA comparisons flow through the same jobs and store.
BASELINE_ENGINES = ("picorv32", "vexriscv", "armv6m")

#: Every legal value of the ``engine`` axis (ART-9 engines + baselines).
ALL_ENGINES = tuple(SIMULATION_ENGINES) + BASELINE_ENGINES


class SpecError(ValueError):
    """Raised for malformed sweep specifications."""


def _normalize_variants(workload: str, value: object) -> List[Dict[str, object]]:
    """Coerce one ``params`` entry to a list of builder-parameter dicts.

    Accepts the documented list-of-dicts form and the natural single-dict
    shorthand (``{"gemm": {"n": 8}}`` means one variant); anything else is
    a :class:`SpecError` naming the expected shape.
    """
    if isinstance(value, Mapping):
        return [dict(value)]
    if isinstance(value, (list, tuple)):
        if not all(isinstance(variant, Mapping) for variant in value):
            raise SpecError(
                f"params for {workload!r} must be a list of parameter dicts, "
                f"got {value!r}")
        return [dict(variant) for variant in value]
    raise SpecError(
        f"params for {workload!r} must be a parameter dict or a list of "
        f"parameter dicts, got {value!r}")


@dataclass(frozen=True)
class SweepJob:
    """One cell of the evaluation grid, as pure picklable data."""

    workload: str
    engine: str
    optimize: bool
    params: Tuple[Tuple[str, object], ...] = ()
    max_cycles: int = DEFAULT_MAX_CYCLES
    machine: str = DEFAULT_MACHINE_NAME

    @property
    def params_dict(self) -> Dict[str, object]:
        """The workload builder parameters as a plain dict."""
        return dict(self.params)

    @property
    def job_id(self) -> str:
        """Content-addressed identity: stable across runs and processes.

        The ``machine`` key joins the identity blob only for non-default
        machines, so every pre-machine-axis job id (including the blessed
        baseline run under ``benchmarks/baseline/``) is unchanged.
        """
        blob_dict = {
            "workload": self.workload,
            "engine": self.engine,
            "optimize": self.optimize,
            "params": [[key, value] for key, value in self.params],
            "max_cycles": self.max_cycles,
        }
        if self.machine != DEFAULT_MACHINE_NAME:
            blob_dict["machine"] = self.machine
        blob = json.dumps(blob_dict, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]

    @property
    def label(self) -> str:
        """Human-readable one-line identity for tables and logs."""
        params = ",".join(f"{key}={value}" for key, value in self.params)
        opt = "opt" if self.optimize else "noopt"
        suffix = f"[{params}]" if params else ""
        label = f"{self.workload}{suffix}/{self.engine}/{opt}"
        if self.machine != DEFAULT_MACHINE_NAME:
            label += f"@{self.machine}"
        return label

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "engine": self.engine,
            "optimize": self.optimize,
            "params": self.params_dict,
            "max_cycles": self.max_cycles,
            "machine": self.machine,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepJob":
        return cls(
            workload=str(data["workload"]),
            engine=str(data["engine"]),
            optimize=bool(data["optimize"]),
            params=_frozen_params(data.get("params")),  # type: ignore[arg-type]
            max_cycles=int(data.get("max_cycles", DEFAULT_MAX_CYCLES)),  # type: ignore[arg-type]
            machine=str(data.get("machine", DEFAULT_MACHINE_NAME)),
        )


@dataclass
class SweepSpec:
    """The declarative grid: workloads x engines x optimize x params.

    ``workloads`` empty means "every registered workload".  ``params`` maps
    a workload name to a list of builder-parameter dicts; each entry is one
    variant of that workload (an empty dict is the registered default).
    Workloads without an entry run once with default parameters.
    """

    workloads: Tuple[str, ...] = ()
    engines: Tuple[str, ...] = tuple(SIMULATION_ENGINES)
    optimize: Tuple[bool, ...] = (True, False)
    params: Dict[str, List[Dict[str, object]]] = field(default_factory=dict)
    max_cycles: int = DEFAULT_MAX_CYCLES
    machines: Tuple[str, ...] = (DEFAULT_MACHINE_NAME,)

    def validate(self) -> None:
        """Check the grid axes against the registries before expansion."""
        known_workloads = sorted(all_workloads())
        for name in self.effective_workloads():
            if name not in known_workloads:
                raise SpecError(f"unknown workload {name!r}; known: {known_workloads}")
        for engine in self.engines:
            if engine not in ALL_ENGINES:
                raise SpecError(
                    f"unknown engine {engine!r}; known: {list(ALL_ENGINES)}")
        if not self.engines:
            raise SpecError("sweep needs at least one engine")
        if not self.optimize:
            raise SpecError("sweep needs at least one optimize setting")
        if not self.machines:
            raise SpecError("sweep needs at least one machine config")
        for machine in self.machines:
            if machine not in MACHINES:
                raise SpecError(
                    f"unknown machine config {machine!r}; "
                    f"known: {list(machine_names())}")
        for name, variants in self.params.items():
            if name not in self.effective_workloads():
                raise SpecError(
                    f"params given for {name!r}, which is not in the workload axis")
            _normalize_variants(name, variants)

    def effective_workloads(self) -> Tuple[str, ...]:
        """The workload axis with the empty-tuple default resolved."""
        return self.workloads or tuple(sorted(all_workloads()))

    def expand(self) -> List[SweepJob]:
        """Flatten the grid into deterministic job records.

        Baseline-core engines execute the *untranslated* RV-32 side, so the
        translator-optimize axis cannot change their results; they are
        collapsed to a single canonical ``optimize=True`` job per variant
        instead of being run once per optimize setting.  The ART-9 machine
        config cannot change them either (they are not ART-9 cores), so the
        machine axis collapses to the default for them the same way.
        """
        self.validate()
        jobs: List[SweepJob] = []
        for workload in self.effective_workloads():
            raw = self.params.get(workload)
            variants = _normalize_variants(workload, raw) if raw else [{}]
            for variant in variants:
                for engine in self.engines:
                    baseline = engine in BASELINE_ENGINES
                    optimize_axis = (True,) if baseline else self.optimize
                    machine_axis = ((DEFAULT_MACHINE_NAME,) if baseline
                                    else self.machines)
                    for optimize in optimize_axis:
                        for machine in machine_axis:
                            jobs.append(SweepJob(
                                workload=workload,
                                engine=engine,
                                optimize=optimize,
                                params=_frozen_params(variant),
                                max_cycles=self.max_cycles,
                                machine=machine,
                            ))
        return jobs

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "workloads": list(self.workloads),
            "engines": list(self.engines),
            "optimize": list(self.optimize),
            "params": {
                name: _normalize_variants(name, variants)
                for name, variants in self.params.items()
            },
            "max_cycles": self.max_cycles,
            "machines": list(self.machines),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        optimize: Iterable[object] = data.get("optimize", (True, False))  # type: ignore[assignment]
        return cls(
            workloads=tuple(data.get("workloads", ())),  # type: ignore[arg-type]
            engines=tuple(data.get("engines", SIMULATION_ENGINES)),  # type: ignore[arg-type]
            optimize=tuple(bool(value) for value in optimize),
            params={
                str(name): [dict(variant) for variant in variants]
                for name, variants in dict(data.get("params", {})).items()  # type: ignore[arg-type]
            },
            max_cycles=int(data.get("max_cycles", DEFAULT_MAX_CYCLES)),  # type: ignore[arg-type]
            machines=tuple(data.get("machines", (DEFAULT_MACHINE_NAME,))),  # type: ignore[arg-type]
        )

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


#: Grown default grid variants: every workload in its paper-default size
#: plus one larger instance, so sweeps exercise both the headline numbers
#: and the scaling behaviour of the translator and engines.
DEFAULT_GRID_PARAMS: Dict[str, List[Dict[str, object]]] = {
    "gemm": [{}, {"n": 8}],
    "sobel": [{}, {"size": 16}],
    "dhrystone": [{}, {"iterations": 500}],
}

#: Named preset grids accepted by ``art9 sweep --preset`` / ``art9 serve``.
SWEEP_PRESETS = ("default", "paper", "smoke", "machines")


def preset_spec(name: str) -> SweepSpec:
    """One of the bundled sweep grids.

    * ``"default"`` — every workload (default size plus the grown
      ``gemm n=8`` / ``sobel size=16`` / ``dhrystone iterations=500``
      variants) on both ART-9 engines, optimize on and off;
    * ``"paper"`` — every workload at paper-default size on *all five*
      engines (fast, pipeline and the three baseline cores), optimize on:
      the cross-ISA grid the report subsystem and the blessed baseline run
      in ``benchmarks/baseline/`` are built from;
    * ``"smoke"`` — a two-workload, eight-job grid for CI smoke tests;
    * ``"machines"`` — the design-space corner grid: two workloads on all
      three ART-9 engines across the default machine and the three
      non-trivial built-in corners, optimize on.
    """
    if name == "default":
        return SweepSpec(
            params={key: [dict(variant) for variant in variants]
                    for key, variants in DEFAULT_GRID_PARAMS.items()})
    if name == "paper":
        return SweepSpec(engines=ALL_ENGINES, optimize=(True,))
    if name == "smoke":
        return SweepSpec(
            workloads=("bubble_sort", "gemm"),
            params={"bubble_sort": [{"length": 8}], "gemm": [{"n": 2}]})
    if name == "machines":
        return SweepSpec(
            workloads=("bubble_sort", "gemm"),
            engines=tuple(SIMULATION_ENGINES),
            optimize=(True,),
            machines=(DEFAULT_MACHINE_NAME, "btfn4", "predictnt",
                      "slowfetch5"),
        )
    raise SpecError(f"unknown sweep preset {name!r}; known: {list(SWEEP_PRESETS)}")
