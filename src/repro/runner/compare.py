"""Diff two sweep runs for regression hunting.

``compare_runs`` matches the records of two run directories by their
content-addressed job IDs and reports every architecturally meaningful
difference: cycle counts, CPI, the stall/flush breakdown (every
:class:`PipelineStats` counter, in fact), the digest of the final machine
state (register file + data memory — *divergences*), result verification
and job status.  Timing noise (wall-clock, worker PIDs) is deliberately
outside the comparison, so two runs of the same code over the same spec
always compare clean, and any diff is a real behaviour change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.runner.store import RunStore, StoreError

#: Scalar record fields compared between runs.
SCALAR_FIELDS = (
    "status",
    "cycles",
    "cpi",
    "stall_cycles",
    "state_digest",
    "verified",
    "translated_instructions",
    # Report inputs: a change in the memory footprint or the iteration
    # count shifts the Fig. 5 ratios and DMIPS numbers, so the regression
    # gate must see it even when cycle counts are untouched.
    "iterations",
    "memory_cells",
    "memory_cell_ratio",
)


@dataclass
class JobDiff:
    """One field of one job differing between the two runs."""

    job_id: str
    label: str
    field: str
    value_a: object
    value_b: object

    def render(self) -> str:
        return (
            f"{self.label} ({self.job_id}): {self.field} "
            f"{self.value_a!r} -> {self.value_b!r}"
        )


@dataclass
class CompareReport:
    """Outcome of comparing two sweep runs."""

    run_a: str
    run_b: str
    jobs_compared: int = 0
    only_in_a: List[str] = field(default_factory=list)
    only_in_b: List[str] = field(default_factory=list)
    diffs: List[JobDiff] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diffs and not self.only_in_a and not self.only_in_b

    @property
    def diff_count(self) -> int:
        return len(self.diffs) + len(self.only_in_a) + len(self.only_in_b)

    def summary(self) -> str:
        lines = [
            f"compare {self.run_a} vs {self.run_b}: "
            f"{self.jobs_compared} jobs compared, {self.diff_count} diffs"
        ]
        for job_id in self.only_in_a:
            lines.append(f"  only in {self.run_a}: {job_id}")
        for job_id in self.only_in_b:
            lines.append(f"  only in {self.run_b}: {job_id}")
        for diff in self.diffs:
            lines.append(f"  {diff.render()}")
        return "\n".join(lines)


def diff_records(record_a: dict, record_b: dict) -> List[JobDiff]:
    """Architecturally meaningful field diffs between two job records.

    Shared by :func:`compare_runs` and the
    :meth:`~repro.service.resultsdb.ResultsDB.deltas` cross-run query, so
    the regression gate and the aggregation layer agree on what counts as
    a behaviour change.
    """
    job_id = record_a["job_id"]
    label = record_a.get("label", job_id)
    diffs: List[JobDiff] = []
    for name in SCALAR_FIELDS:
        if record_a.get(name) != record_b.get(name):
            diffs.append(JobDiff(
                job_id=job_id, label=label, field=name,
                value_a=record_a.get(name), value_b=record_b.get(name),
            ))
    stats_a = record_a.get("stats") or {}
    stats_b = record_b.get("stats") or {}
    for name in sorted(set(stats_a) | set(stats_b)):
        if name == "cycles":
            continue  # already reported as a scalar field
        if stats_a.get(name) != stats_b.get(name):
            diffs.append(JobDiff(
                job_id=job_id, label=label, field=f"stats.{name}",
                value_a=stats_a.get(name), value_b=stats_b.get(name),
            ))
    return diffs


def compare_record_maps(records_a: dict, records_b: dict,
                        run_a: str, run_b: str) -> CompareReport:
    """Pair two ``{job_id: record}`` maps into a :class:`CompareReport`.

    The single pairing implementation behind both ``sweep --compare``
    (:func:`compare_runs`) and ``ResultsDB.deltas``, so the two surfaces
    can never disagree about matching semantics.
    """
    report = CompareReport(run_a=run_a, run_b=run_b)
    report.only_in_a = sorted(set(records_a) - set(records_b))
    report.only_in_b = sorted(set(records_b) - set(records_a))
    for job_id in sorted(set(records_a) & set(records_b)):
        report.jobs_compared += 1
        report.diffs.extend(diff_records(records_a[job_id], records_b[job_id]))
    return report


def compare_runs(run_a: str, run_b: str) -> CompareReport:
    """Compare the result stores of two run directories.

    A path that holds no run at all is an error, not an empty comparison —
    otherwise a typo'd baseline path would make a regression gate
    permanently green.
    """
    store_a, store_b = RunStore(run_a), RunStore(run_b)
    for store in (store_a, store_b):
        if not store.exists():
            raise StoreError(f"{store.root!r} is not a sweep run directory "
                             f"(no {store.spec_path})")
    records_a = {record["job_id"]: record for record in store_a.records()}
    records_b = {record["job_id"]: record for record in store_b.records()}
    return compare_record_maps(records_a, records_b, run_a, run_b)
