"""Persistent sweep workers: pure job specs in, plain-dict records out.

Every function here is importable at module scope so it can cross a
``multiprocessing`` boundary under any start method.  Worker processes are
*persistent*: the module-level caches keep one :class:`SoftwareFramework`
per optimize setting (which itself memoises assembled/translated programs)
and one :class:`HardwareFramework` per engine, so a worker that executes
both the fast-engine and pipeline jobs of a workload pays for assembly and
translation exactly once.  Across *processes*, translation and
compiled-engine codegen additionally flow through the shared on-disk
artifact cache (:mod:`repro.cache`): the first worker anywhere on the
machine to reach a grid point builds the artifact, every later worker —
including ones in entirely separate sweep invocations — deserialises it.

The same property makes the inline (``jobs=1``) path cheap: the
orchestrator calls :func:`execute_job` directly in-process and hits the
identical caches.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional, Tuple

from repro.baselines import ARMv6MCodeSizeModel, PicoRV32Model, VexRiscvModel
from repro.framework.hwflow import HardwareFramework
from repro.framework.swflow import SoftwareFramework, WorkloadKey, workload_key
from repro.obs import trace
from repro.riscv.simulator import RVSimulator
from repro.runner.spec import BASELINE_ENGINES, SweepJob
from repro.sim.batch import BatchEngine, batchable_programs
from repro.sim.machine import DEFAULT_MACHINE_NAME
from repro.sim.trace import state_digest
from repro.testing import FuzzReport, GeneratorConfig
from repro.testing import fuzz as run_fuzz
from repro.testing import fuzz_batched as run_fuzz_batched
from repro.workloads import get_workload
from repro.workloads.base import Workload

# Spawned worker processes inherit ART9_TRACE/ART9_TRACE_FILE from the
# parent (the CLI sets them before the backend starts), so picking the
# tracing decision up at import time covers every start method.
trace.configure_from_env()

#: Per-process framework caches (populated lazily; survive across jobs).
_SOFTWARE: Dict[bool, SoftwareFramework] = {}
_HARDWARE: Dict[Tuple[str, str, bool], HardwareFramework] = {}
_WORKLOADS: Dict[WorkloadKey, Workload] = {}


def _software(optimize: bool) -> SoftwareFramework:
    framework = _SOFTWARE.get(optimize)
    if framework is None:
        framework = _SOFTWARE[optimize] = SoftwareFramework(optimize=optimize)
    return framework


def _pgo_enabled(engine: str) -> bool:
    """Whether ``ART9_PGO`` asks compiled-engine jobs to run profile-guided.

    An environment knob (rather than a job field) keeps job identities —
    and therefore resume/compare semantics — unchanged: PGO is a pure
    throughput choice, bit-identical by contract, so records produced
    either way must compare equal.
    """
    return engine == "compiled" and os.environ.get("ART9_PGO", "") not in ("", "0")


def _hardware(engine: str, machine: str = DEFAULT_MACHINE_NAME) -> HardwareFramework:
    pgo = _pgo_enabled(engine)
    key = (engine, machine, pgo)
    framework = _HARDWARE.get(key)
    if framework is None:
        framework = _HARDWARE[key] = HardwareFramework(
            engine=engine, machine=machine, pgo=pgo)
    return framework


def _workload(name: str, params: Optional[dict] = None) -> Workload:
    """Cached workload instances (the RV program is cached on the object)."""
    key = workload_key(name, params)
    workload = _WORKLOADS.get(key)
    if workload is None:
        workload = _WORKLOADS[key] = get_workload(name, **dict(params or {}))
    return workload


def reset_caches() -> None:
    """Drop the per-process framework caches (test isolation helper)."""
    _SOFTWARE.clear()
    _HARDWARE.clear()
    _WORKLOADS.clear()


def execute_job(job: SweepJob) -> dict:
    """Run one sweep job and return its structured result record.

    Never raises: failures come back as ``status="error"`` records so one
    broken grid cell cannot take down a whole sweep (or its worker pool).
    """
    started = time.perf_counter()
    record = {
        "job_id": job.job_id,
        "label": job.label,
        "workload": job.workload,
        "engine": job.engine,
        "optimize": job.optimize,
        "params": job.params_dict,
        "max_cycles": job.max_cycles,
        "machine": job.machine,
        "status": "ok",
        "worker_pid": os.getpid(),
    }
    try:
        with trace.span("job", job_id=job.job_id, label=job.label):
            if job.engine in BASELINE_ENGINES:
                record.update(_execute_baseline(job))
            else:
                record.update(_execute_art9(job))
    except Exception as exc:  # pragma: no cover - exercised via error-path test
        record["status"] = "error"
        record["error"] = f"{type(exc).__name__}: {exc}"
    record["elapsed_s"] = round(time.perf_counter() - started, 6)
    return record


def _execute_art9(job: SweepJob) -> dict:
    """Translate and simulate one workload on an ART-9 engine.

    Translation goes through the cross-process artifact cache
    (:meth:`~repro.framework.swflow.SoftwareFramework.
    compile_named_workload_cached`), so across a whole worker fleet each
    grid point is translated once, no matter how many processes — local
    pool workers, queue-backend spawn workers or remote ``art9 work``
    clients — touch it.
    """
    software = _software(job.optimize)
    xlate_started = time.perf_counter()
    program, report, workload = software.compile_named_workload_cached(
        job.workload, job.params_dict)
    xlate_s = time.perf_counter() - xlate_started
    cache_hit = software.last_compile_source in ("memo", "cache")
    phase: Dict[str, float] = {}
    with trace.span("simulate", engine=job.engine, workload=job.workload):
        stats, registers, memory = _hardware(job.engine, job.machine).simulate_with_state(
            program, max_cycles=job.max_cycles, engine=job.engine, timings=phase)
    actual = [
        memory.get(workload.result_base + 4 * index, 0)
        for index in range(workload.result_count)
    ]
    return {
        "timings": {
            "xlate_s": round(xlate_s, 6),
            "codegen_s": round(phase.get("codegen_s", 0.0), 6),
            "execute_s": round(phase.get("execute_s", 0.0), 6),
        },
        "cache_hit": cache_hit,
        "cycles": stats.cycles,
        "instructions": stats.instructions_committed,
        "cpi": round(stats.cpi, 6),
        "stall_cycles": stats.stall_cycles,
        "stats": stats.to_dict(),
        "state_digest": state_digest(registers, memory),
        "verified": actual == workload.expected_results,
        "iterations": workload.iterations,
        "translated_instructions": report.final_instructions,
        "instruction_expansion": round(report.instruction_expansion, 6),
        "memory_cells": report.ternary_memory_trits,
        "memory_cell_ratio": round(report.memory_cell_ratio, 6),
    }


def _execute_baseline(job: SweepJob) -> dict:
    """Run one workload's RV-32 side through a baseline-core model.

    The baseline models consume the untranslated RV-32 program, so the
    ``optimize`` axis has no effect on them beyond the job identity;
    ``memory_cells`` holds the binary instruction-memory footprint
    (RV-32I bits, or estimated Thumb-1 bits for ``armv6m``) that the
    Fig. 5 comparison divides the ternary trit counts by.
    """
    started = time.perf_counter()
    workload = _workload(job.workload, job.params_dict)
    rv_program = workload.rv_program()
    if job.engine == "armv6m":
        size = ARMv6MCodeSizeModel().estimate(rv_program)
        return {
            "timings": {"xlate_s": 0.0, "codegen_s": 0.0,
                        "execute_s": round(time.perf_counter() - started, 6)},
            "cache_hit": False,
            "cycles": 0,
            "instructions": 0,
            "cpi": 0.0,
            "stall_cycles": 0,
            "verified": True,
            "iterations": workload.iterations,
            "memory_cells": size.total_bits,
            "thumb_instructions": size.thumb_instructions,
            "literal_pool_words": size.literal_pool_words,
        }
    model = PicoRV32Model() if job.engine == "picorv32" else VexRiscvModel()
    simulator = RVSimulator(rv_program)
    result = model.run(rv_program, simulator=simulator,
                       max_cycles=job.max_cycles)
    actual = simulator.memory_words(workload.result_base, workload.result_count)
    return {
        "timings": {"xlate_s": 0.0, "codegen_s": 0.0,
                    "execute_s": round(time.perf_counter() - started, 6)},
        "cache_hit": False,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "cpi": round(result.cpi, 6),
        "stall_cycles": result.detail.get("load_use_stalls", 0),
        "verified": actual == workload.expected_results,
        "iterations": workload.iterations,
        "memory_cells": rv_program.instruction_memory_bits(),
        "baseline_detail": dict(result.detail),
    }


#: The workload-builder parameter treated as the per-lane variation axis
#: when batching same-grid-point jobs: jobs that differ *only* in it are
#: candidates for one multi-lane batch execution.
SEED_PARAM = "seed"


def batch_group_key(job: SweepJob) -> tuple:
    """Grid-point identity of a job with the seed-style axis removed."""
    varying = tuple(sorted(
        (key, value) for key, value in job.params if key != SEED_PARAM))
    return (job.workload, job.engine, job.optimize, job.machine,
            job.max_cycles, varying)


def batchable_groups(jobs: "list[SweepJob]") -> "list[list[SweepJob]]":
    """Partition a job list into batch-candidate groups.

    Jobs sharing a grid point (same workload/engine/optimize/machine/
    max_cycles and identical params apart from ``seed``) group together;
    baseline-core jobs always stay singletons (their models are not ART-9
    engines).  Group order follows first appearance and jobs keep their
    relative order inside a group, so flattening the groups in order and
    sorting records by job id reproduces the serial store layout.
    """
    groups: "list[list[SweepJob]]" = []
    index_of: Dict[tuple, int] = {}
    for job in jobs:
        if job.engine in BASELINE_ENGINES:
            groups.append([job])
            continue
        key = batch_group_key(job)
        position = index_of.get(key)
        if position is None:
            index_of[key] = len(groups)
            groups.append([job])
        else:
            groups[position].append(job)
    return groups


def execute_job_batch(jobs: "list[SweepJob]") -> "list[dict]":
    """Run one same-grid-point job group, batched when the programs allow.

    Every record is identical to what :func:`execute_job` produces for the
    same job (modulo the volatile ``elapsed_s``/``worker_pid`` fields, as
    for any backend) — the batch engine is bit-identical to the serial
    engines, so batching is purely an execution-throughput optimization.
    Any obstacle — divergent instruction streams, compile failures, a
    construction-time fault — falls back to the serial path, which also
    owns per-job error reporting.
    """
    if len(jobs) == 1:
        return [execute_job(jobs[0])]
    started = time.perf_counter()
    try:
        compiled = []
        cache_hits = []
        for job in jobs:
            software = _software(job.optimize)
            compiled.append(software.compile_named_workload_cached(
                job.workload, job.params_dict))
            cache_hits.append(
                software.last_compile_source in ("memo", "cache"))
        xlate_elapsed = time.perf_counter() - started
        programs = [program for program, _, _ in compiled]
        if not batchable_programs(programs):
            return [execute_job(job) for job in jobs]
        with trace.span("batch", lanes=len(jobs), workload=jobs[0].workload):
            outcomes = BatchEngine(programs, machine=jobs[0].machine).run_with_stats(
                max_cycles=jobs[0].max_cycles)
    except Exception:
        return [execute_job(job) for job in jobs]
    elapsed = round((time.perf_counter() - started) / len(jobs), 6)
    xlate_share = round(xlate_elapsed / len(jobs), 6)
    execute_share = round(
        (time.perf_counter() - started - xlate_elapsed) / len(jobs), 6)
    records = []
    for job, (program, report, workload), outcome, cache_hit in zip(
            jobs, compiled, outcomes, cache_hits):
        record = {
            "job_id": job.job_id,
            "label": job.label,
            "workload": job.workload,
            "engine": job.engine,
            "optimize": job.optimize,
            "params": job.params_dict,
            "max_cycles": job.max_cycles,
            "machine": job.machine,
            "status": "ok",
            "worker_pid": os.getpid(),
        }
        if not outcome.ok:
            record["status"] = "error"
            record["error"] = f"{outcome.error_kind}: {outcome.error}"
        else:
            stats = outcome.stats
            result = outcome.result
            actual = [
                result.memory.get(workload.result_base + 4 * index, 0)
                for index in range(workload.result_count)
            ]
            record.update({
                "cycles": stats.cycles,
                "instructions": stats.instructions_committed,
                "cpi": round(stats.cpi, 6),
                "stall_cycles": stats.stall_cycles,
                "stats": stats.to_dict(),
                "state_digest": state_digest(result.registers, result.memory),
                "verified": actual == workload.expected_results,
                "iterations": workload.iterations,
                "translated_instructions": report.final_instructions,
                "instruction_expansion": round(report.instruction_expansion, 6),
                "memory_cells": report.ternary_memory_trits,
                "memory_cell_ratio": round(report.memory_cell_ratio, 6),
            })
        record["timings"] = {"xlate_s": xlate_share, "codegen_s": 0.0,
                             "execute_s": execute_share}
        record["cache_hit"] = cache_hit
        record["elapsed_s"] = elapsed
        records.append(record)
    return records


def execute_fuzz_chunk(chunk: dict) -> FuzzReport:
    """Run one contiguous seed range of a differential fuzzing session.

    ``chunk`` is a plain dict (``seed``, ``count``, ``max_instructions``,
    ``check_pipeline``, optional ``machine``, optional ``batch_lanes``) so
    the parallel fuzz front end can ship work to the same process pool the
    sweeps use.  ``batch_lanes > 1`` switches the chunk to the batched
    harness: each seed widens into that many data-variant lanes executed by
    one multi-lane :class:`~repro.sim.batch.BatchEngine` and pinned to the
    serial engines.
    """
    batch_lanes = int(chunk.get("batch_lanes", 0))
    if batch_lanes > 1:
        return run_fuzz_batched(
            count=int(chunk["count"]),
            seed=int(chunk["seed"]),
            config=GeneratorConfig(),
            lanes=batch_lanes,
            max_instructions=int(chunk.get("max_instructions", 200_000)),
            check_stats=bool(chunk.get("check_pipeline", True)),
            machine=chunk.get("machine"),
        )
    return run_fuzz(
        count=int(chunk["count"]),
        seed=int(chunk["seed"]),
        config=GeneratorConfig(),
        max_instructions=int(chunk.get("max_instructions", 200_000)),
        check_pipeline=bool(chunk.get("check_pipeline", True)),
        machine=chunk.get("machine"),
    )


def workload_probe(name: str, params: Optional[dict] = None) -> dict:
    """Cheap worker-side sanity probe (used by tests and diagnostics)."""
    program, report, workload = _software(True).compile_named_workload(name, params)
    return {
        "workload": workload.name,
        "instructions": len(program.instructions),
        "translated_instructions": report.final_instructions,
        "worker_pid": os.getpid(),
    }
