"""Persistent sweep workers: pure job specs in, plain-dict records out.

Every function here is importable at module scope so it can cross a
``multiprocessing`` boundary under any start method.  Worker processes are
*persistent*: the module-level caches keep one :class:`SoftwareFramework`
per optimize setting (which itself memoises assembled/translated programs)
and one :class:`HardwareFramework` per engine, so a worker that executes
both the fast-engine and pipeline jobs of a workload pays for assembly and
translation exactly once.

The same property makes the inline (``jobs=1``) path cheap: the
orchestrator calls :func:`execute_job` directly in-process and hits the
identical caches.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from repro.framework.hwflow import HardwareFramework
from repro.framework.swflow import SoftwareFramework
from repro.runner.spec import SweepJob
from repro.sim.trace import state_digest
from repro.testing import FuzzReport, GeneratorConfig
from repro.testing import fuzz as run_fuzz

#: Per-process framework caches (populated lazily; survive across jobs).
_SOFTWARE: Dict[bool, SoftwareFramework] = {}
_HARDWARE: Dict[str, HardwareFramework] = {}


def _software(optimize: bool) -> SoftwareFramework:
    framework = _SOFTWARE.get(optimize)
    if framework is None:
        framework = _SOFTWARE[optimize] = SoftwareFramework(optimize=optimize)
    return framework


def _hardware(engine: str) -> HardwareFramework:
    framework = _HARDWARE.get(engine)
    if framework is None:
        framework = _HARDWARE[engine] = HardwareFramework(engine=engine)
    return framework


def reset_caches() -> None:
    """Drop the per-process framework caches (test isolation helper)."""
    _SOFTWARE.clear()
    _HARDWARE.clear()


def execute_job(job: SweepJob) -> dict:
    """Run one sweep job and return its structured result record.

    Never raises: failures come back as ``status="error"`` records so one
    broken grid cell cannot take down a whole sweep (or its worker pool).
    """
    started = time.perf_counter()
    record = {
        "job_id": job.job_id,
        "label": job.label,
        "workload": job.workload,
        "engine": job.engine,
        "optimize": job.optimize,
        "params": job.params_dict,
        "max_cycles": job.max_cycles,
        "status": "ok",
        "worker_pid": os.getpid(),
    }
    try:
        program, report, workload = _software(job.optimize).compile_named_workload(
            job.workload, job.params_dict)
        stats, registers, memory = _hardware(job.engine).simulate_with_state(
            program, max_cycles=job.max_cycles, engine=job.engine)
        actual = [
            memory.get(workload.result_base + 4 * index, 0)
            for index in range(workload.result_count)
        ]
        record.update({
            "cycles": stats.cycles,
            "instructions": stats.instructions_committed,
            "cpi": round(stats.cpi, 6),
            "stall_cycles": stats.stall_cycles,
            "stats": stats.to_dict(),
            "state_digest": state_digest(registers, memory),
            "verified": actual == workload.expected_results,
            "translated_instructions": report.final_instructions,
            "instruction_expansion": round(report.instruction_expansion, 6),
        })
    except Exception as exc:  # pragma: no cover - exercised via error-path test
        record["status"] = "error"
        record["error"] = f"{type(exc).__name__}: {exc}"
    record["elapsed_s"] = round(time.perf_counter() - started, 6)
    return record


def execute_fuzz_chunk(chunk: dict) -> FuzzReport:
    """Run one contiguous seed range of a differential fuzzing session.

    ``chunk`` is a plain dict (``seed``, ``count``, ``max_instructions``,
    ``check_pipeline``) so the parallel fuzz front end can ship work to the
    same process pool the sweeps use.
    """
    return run_fuzz(
        count=int(chunk["count"]),
        seed=int(chunk["seed"]),
        config=GeneratorConfig(),
        max_instructions=int(chunk.get("max_instructions", 200_000)),
        check_pipeline=bool(chunk.get("check_pipeline", True)),
    )


def workload_probe(name: str, params: Optional[dict] = None) -> dict:
    """Cheap worker-side sanity probe (used by tests and diagnostics)."""
    program, report, workload = _software(True).compile_named_workload(name, params)
    return {
        "workload": workload.name,
        "instructions": len(program.instructions),
        "translated_instructions": report.final_instructions,
        "worker_pid": os.getpid(),
    }
