"""Lightweight, stdlib-only metrics: named counters, gauges, histograms.

The registry is the telemetry substrate for the whole stack — engines,
artifact cache, sweep workers, and the coordinator all record into it.
Design constraints, in order:

1. **Cheap increments.**  ``counter()`` / ``gauge()`` return plain mutable
   handle objects whose hot-path operation is one attribute add — no dict
   lookup, no lock, no string formatting.  Call sites that sit inside
   per-instruction loops should resolve the handle once (module or object
   attribute) and accumulate locally, flushing once per run.
2. **Process-local snapshots.**  ``to_dict()`` freezes the registry into
   plain JSON-able data.  Worker processes snapshot at job end and ship
   the snapshot home in their records or over the wire.
3. **Mergeable.**  ``merge()`` folds one snapshot into another so the
   parent can aggregate a whole fleet: counters add, gauges keep the
   latest non-None (max for ``*_max`` names), histograms concatenate
   their bucket counts.

Thread-safety: increments are plain ``+=`` on Python ints under the GIL,
which is atomic enough for monotonically growing counters whose consumers
tolerate a snapshot being a few increments stale.  Snapshot/merge take no
locks for the same reason.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Mapping, Optional, Sequence


class Counter:
    """A monotonically increasing count (optionally with a byte tally)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (queue depth, in-flight count, high-water marks).

    Gauges whose name ends in ``_max`` merge by ``max()`` instead of
    last-writer-wins, which is the natural aggregation for high-water
    marks across workers.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if self.value is None or value > self.value:
            self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self.value})"


#: Default histogram bucket upper bounds (seconds-oriented, log-ish spacing).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)


class Histogram:
    """A fixed-bucket histogram with count/sum/min/max summary stats."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name} n={self.count} mean={self.mean:.6f})"


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- handle resolution (cheap after the first call per name) ------------

    def counter(self, name: str) -> Counter:
        handle = self._counters.get(name)
        if handle is None:
            handle = self._counters[name] = Counter(name)
        return handle

    def gauge(self, name: str) -> Gauge:
        handle = self._gauges.get(name)
        if handle is None:
            handle = self._gauges[name] = Gauge(name)
        return handle

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        handle = self._histograms.get(name)
        if handle is None:
            handle = self._histograms[name] = Histogram(name, bounds)
        return handle

    # -- snapshots -----------------------------------------------------------

    def to_dict(self) -> dict:
        """Freeze the registry into plain JSON-able data."""
        snapshot: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, counter in sorted(self._counters.items()):
            snapshot["counters"][name] = counter.value
        for name, gauge in sorted(self._gauges.items()):
            snapshot["gauges"][name] = gauge.value
        for name, histogram in sorted(self._histograms.items()):
            snapshot["histograms"][name] = {
                "bounds": list(histogram.bounds),
                "bucket_counts": list(histogram.bucket_counts),
                "count": histogram.count,
                "sum": histogram.total,
                "min": histogram.minimum,
                "max": histogram.maximum,
            }
        return snapshot

    def merge(self, snapshot: Mapping) -> None:
        """Fold a ``to_dict()`` snapshot (e.g. from a worker) into this
        registry: counters add, gauges keep the newest non-None value
        (``max`` for ``*_max`` names), histograms add bucket-wise when the
        bounds agree (and fall back to summary-only accumulation when they
        do not)."""
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(int(value))
        for name, value in (snapshot.get("gauges") or {}).items():
            if value is None:
                continue
            if name.endswith("_max"):
                self.gauge(name).set_max(value)
            else:
                self.gauge(name).set(value)
        for name, data in (snapshot.get("histograms") or {}).items():
            bounds = tuple(data.get("bounds") or DEFAULT_BUCKETS)
            histogram = self.histogram(name, bounds)
            incoming_counts: List[int] = list(data.get("bucket_counts") or [])
            if histogram.bounds == bounds and \
                    len(incoming_counts) == len(histogram.bucket_counts):
                for index, bucket in enumerate(incoming_counts):
                    histogram.bucket_counts[index] += int(bucket)
            histogram.count += int(data.get("count") or 0)
            histogram.total += float(data.get("sum") or 0.0)
            for extreme, pick in (("min", min), ("max", max)):
                value = data.get(extreme)
                if value is None:
                    continue
                current = getattr(histogram, "minimum" if extreme == "min"
                                  else "maximum")
                setattr(histogram, "minimum" if extreme == "min" else "maximum",
                        value if current is None else pick(current, value))

    def reset(self) -> None:
        """Drop every metric (test isolation helper)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: The process-wide default registry every instrumented module records into.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """Resolve a counter handle on the default registry."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Resolve a gauge handle on the default registry."""
    return REGISTRY.gauge(name)


def histogram(name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
    """Resolve a histogram handle on the default registry."""
    return REGISTRY.histogram(name, bounds)


def snapshot() -> dict:
    """``to_dict()`` of the default registry."""
    return REGISTRY.to_dict()


def merge_snapshot(data: Mapping) -> None:
    """Merge a worker snapshot into the default registry."""
    REGISTRY.merge(data)


def reset() -> None:
    """Reset the default registry (test isolation helper)."""
    REGISTRY.reset()
