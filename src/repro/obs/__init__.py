"""Observability layer: process-local metrics + span tracing.

``repro.obs.metrics`` is the always-on (but near-free) counter/gauge/
histogram registry the engines, cache, workers, and coordinator record
into; ``repro.obs.trace`` is the off-by-default span tracer that writes
``spans.jsonl`` into the run directory when ``--trace`` / ``ART9_TRACE=1``
is set.  See ``art9 status`` and ``art9 profile`` for the CLI surface.
"""

from repro.obs import metrics, trace
from repro.obs.metrics import (
    MetricsRegistry,
    REGISTRY,
    counter,
    gauge,
    histogram,
    merge_snapshot,
    snapshot,
)
from repro.obs.trace import (
    TRACE_ENV,
    TRACE_FILE_ENV,
    configure_from_env,
    read_spans,
    span,
)

__all__ = [
    "metrics",
    "trace",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "merge_snapshot",
    "snapshot",
    "TRACE_ENV",
    "TRACE_FILE_ENV",
    "configure_from_env",
    "read_spans",
    "span",
]
