"""Span-based tracing: where did the wall-clock time of a run actually go?

A *span* is one named interval (``sweep``, ``job``, ``xlate``, ``codegen``,
``execute``) with a start/end from :func:`time.perf_counter`, an id, a
parent id (spans nest via a per-thread stack), and optional attributes.
Finished spans append to a JSONL file — conventionally ``spans.jsonl``
inside the run directory — one object per line, so files from many worker
processes can simply be concatenated.

Tracing is **off by default** and costs one module-level boolean check
when off.  It is enabled per-run:

* ``art9 sweep --trace`` / ``art9 serve --trace`` set the environment
  variables below before workers spawn, so every worker inherits them;
* ``ART9_TRACE=1`` (with ``ART9_TRACE_FILE=<path>``) does the same by
  hand for ad-hoc runs.

Each process appends with ``O_APPEND`` semantics and writes whole lines,
which POSIX keeps atomic for the short records involved, so concurrent
workers can share one span file.

Non-perturbation is a hard requirement (see the conformance tests):
spans observe timing only — no simulation state, no record fields, no
scheduling decisions flow through this module.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Iterator, List, Optional

#: Environment variable switching tracing on ("1"/"true"/anything non-0).
TRACE_ENV = "ART9_TRACE"
#: Environment variable naming the span JSONL file.
TRACE_FILE_ENV = "ART9_TRACE_FILE"

#: Module-level fast-path flag: the no-trace cost is this one boolean.
enabled = False

_path: Optional[str] = None
_lock = threading.Lock()
_local = threading.local()
_next_id_lock = threading.Lock()
_next_id = 0


def _new_span_id() -> str:
    global _next_id
    with _next_id_lock:
        _next_id += 1
        serial = _next_id
    return f"{os.getpid():x}-{serial:x}"


def configure(path: Optional[str]) -> None:
    """Enable tracing into ``path`` (or disable when ``path`` is None)."""
    global enabled, _path
    with _lock:
        _path = path
        enabled = path is not None


def configure_from_env() -> bool:
    """Apply ``ART9_TRACE`` / ``ART9_TRACE_FILE``; returns the enabled state.

    Called once at worker startup (and lazily on first span) so spawned
    processes pick up the run's tracing decision from their environment.
    """
    flag = os.environ.get(TRACE_ENV, "")
    if flag in ("", "0"):
        configure(None)
        return False
    path = os.environ.get(TRACE_FILE_ENV)
    if not path:
        path = os.path.join(os.getcwd(), "spans.jsonl")
    configure(path)
    return True


def trace_path() -> Optional[str]:
    """The active span file, or None when tracing is off."""
    return _path


def _stack() -> List[str]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def _emit(record: dict) -> None:
    path = _path
    if path is None:
        return
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    try:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line)
    except OSError:
        # Telemetry must never take down the run it is observing.
        pass


@contextmanager
def span(name: str, **attributes) -> Iterator[Optional[dict]]:
    """Record one named interval; nests under the enclosing span.

    Yields the in-progress span record (or ``None`` when tracing is off)
    so callers may attach late attributes::

        with trace.span("xlate", workload="dhrystone") as sp:
            ...
            if sp is not None:
                sp["attrs"]["instructions"] = summary.final_instructions
    """
    if not enabled:
        yield None
        return
    stack = _stack()
    record = {
        "name": name,
        "span_id": _new_span_id(),
        "parent_id": stack[-1] if stack else None,
        "pid": os.getpid(),
        "start_s": time.perf_counter(),
        "attrs": {key: value for key, value in attributes.items()},
    }
    stack.append(record["span_id"])
    try:
        yield record
    finally:
        stack.pop()
        record["end_s"] = time.perf_counter()
        record["duration_s"] = record["end_s"] - record["start_s"]
        _emit(record)


def read_spans(path: str) -> List[dict]:
    """Load a span JSONL file, skipping torn lines (a worker may have died
    mid-write; the surviving spans are still useful)."""
    spans: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                spans.append(record)
    return spans
