"""Content-addressed on-disk artifact cache shared across worker processes.

Sweep workers used to re-translate and re-predecode the same workloads from
scratch once *per process*: a 16-worker fleet sweeping the ``paper`` grid
paid for every translation sixteen times, and the compiled execution engine
(:mod:`repro.sim.compiled`) would have regenerated its block sources just
as often.  This module gives every expensive, deterministic build product a
durable home on disk so it is produced once per grid point across the
whole fleet:

* **translation artifacts** (``kind="xlate"``) — the serialised ART-9
  :class:`~repro.isa.program.Program` plus the numeric translation-report
  summary, keyed by workload name + builder params + the translator's
  optimize flag + :data:`~repro.xlate.translator.TRANSLATOR_VERSION`;
* **codegen artifacts** (``kind="codegen"``) — the compiled engine's
  generated superblock sources, keyed by program content digest +
  :data:`~repro.sim.compiled.CODEGEN_VERSION` + timing mode + TDM depth
  (+ the chaining flag, and for PGO trace overlays the chain-plan digest);
* **chain-plan artifacts** (``kind="chainplan"``) — the profile-guided
  trace plans of :meth:`CompiledEngine._ensure_pgo_plan`, keyed by program
  content digest + ``CHAIN_PLAN_VERSION`` + the profiling budget, so the
  architectural profiling pass runs once per program across the fleet.

Layout and invalidation
-----------------------

Entries live under ``<root>/<kind>/<key[:2]>/<key>.json`` where ``key`` is
the SHA-256 of the canonical JSON *key material*.  Because the key hashes
every input that can change the artifact (including the producer's version
constant), invalidation is automatic: bump ``TRANSLATOR_VERSION`` or
``CODEGEN_VERSION`` and every stale entry simply stops being addressed —
no deletion pass is needed (``clear()`` exists for reclaiming disk).

Writes go through a same-directory temp file + :func:`os.replace`, so
concurrent writers are safe: for a given key, any worker's payload is
behaviourally equivalent (each block's content is deterministic), so the
last atomic rename winning is always correct.  Translation entries are in
fact byte-identical across writers; codegen entries can differ in *which
lazily discovered suffix blocks* they carry, so suffix publishers merge
the current entry before replacing it (a lost race only costs a later
re-compile, never correctness).  A corrupted or torn entry is treated as
a miss and overwritten.

The default root is ``$ART9_CACHE_DIR`` (or ``~/.cache/art9``); setting
``ART9_CACHE_DISABLE=1`` turns the shared default off, e.g. for tests that
must observe cold-path behaviour.

**Trust:** codegen artifacts contain (marshalled) executable code that the
compiled engine will run, so the cache directory must be as trusted as the
installed package itself.  The default under ``~/.cache`` is private to
the user; if you point ``ART9_CACHE_DIR`` elsewhere, never use a location
other users can write to (e.g. a fixed path in a shared ``/tmp``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from typing import Dict, Optional

from repro.obs import metrics

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "ART9_CACHE_DIR"
#: Environment variable disabling the shared default cache entirely.
CACHE_DISABLE_ENV = "ART9_CACHE_DISABLE"


def cache_key(material: dict) -> str:
    """SHA-256 over the canonical JSON form of the key material."""
    blob = json.dumps(material, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class ArtifactCache:
    """A directory of content-addressed JSON artifacts."""

    def __init__(self, root: str):
        self.root = root
        self.hits = 0
        self.misses = 0
        self.writes = 0

    @staticmethod
    def _record(kind: str, event: str, size: int = 0) -> None:
        """Tally one cache event per kind in the process metrics registry."""
        metrics.counter(f"cache.{kind}.{event}").inc()
        if size:
            metrics.counter(f"cache.{kind}.{event}_bytes").inc(size)

    # -- addressing ---------------------------------------------------------

    def path_for(self, kind: str, key: str) -> str:
        """Filesystem location of one artifact (whether or not it exists)."""
        return os.path.join(self.root, kind, key[:2], f"{key}.json")

    # -- access -------------------------------------------------------------

    def get_json(self, kind: str, key_material: dict) -> Optional[dict]:
        """The stored payload for this key, or ``None`` on a miss.

        Unreadable entries (torn writes, foreign junk) count as misses —
        the producer regenerates and overwrites them.
        """
        path = self.path_for(kind, cache_key(key_material))
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            self.misses += 1
            self._record(kind, "misses")
            return None
        try:
            payload = json.loads(blob.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            payload = None
        if not isinstance(payload, dict):
            # Torn write or foreign junk: a corruption is a miss, but one
            # worth its own counter — a growing rate means disk trouble.
            self.misses += 1
            self._record(kind, "misses")
            self._record(kind, "corruptions")
            return None
        self.hits += 1
        self._record(kind, "hits", len(blob))
        return payload

    def put_json(self, kind: str, key_material: dict, payload: dict) -> str:
        """Atomically store ``payload`` under this key; returns the path.

        A cache must never take down the work it is accelerating, so
        filesystem errors (read-only media, quota) are swallowed and the
        caller simply keeps its freshly built artifact.
        """
        path = self.path_for(kind, cache_key(key_material))
        blob = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.remove(temp_path)
                except OSError:
                    pass
                raise
            self.writes += 1
            self._record(kind, "writes", len(blob))
        except OSError:
            pass
        return path

    # -- maintenance --------------------------------------------------------

    def entry_count(self, kind: Optional[str] = None) -> int:
        """Number of stored artifacts (optionally of one kind)."""
        kinds = [kind] if kind else self.kinds()
        total = 0
        for one in kinds:
            base = os.path.join(self.root, one)
            for _dirpath, _dirnames, filenames in os.walk(base):
                total += sum(1 for name in filenames if name.endswith(".json"))
        return total

    def kinds(self) -> list:
        """Artifact kinds present under the cache root."""
        try:
            return sorted(
                name for name in os.listdir(self.root)
                if os.path.isdir(os.path.join(self.root, name)))
        except OSError:
            return []

    def clear(self) -> int:
        """Delete every stored artifact; returns how many were removed."""
        removed = 0
        for kind in self.kinds():
            base = os.path.join(self.root, kind)
            for dirpath, _dirnames, filenames in os.walk(base, topdown=False):
                for name in filenames:
                    try:
                        os.remove(os.path.join(dirpath, name))
                        removed += 1
                    except OSError:
                        pass
                try:
                    os.rmdir(dirpath)
                except OSError:
                    pass
        return removed

    def disk_stats(self) -> dict:
        """On-disk footprint: entry counts and byte totals, per kind.

        Unreadable files are skipped (a concurrent prune or writer may
        remove entries mid-walk); the numbers are a point-in-time snapshot,
        not a transaction.
        """
        kinds: Dict[str, dict] = {}
        total_entries = 0
        total_bytes = 0
        for kind in self.kinds():
            entries = 0
            size = 0
            base = os.path.join(self.root, kind)
            for dirpath, _dirnames, filenames in os.walk(base):
                for name in filenames:
                    if not name.endswith(".json"):
                        continue
                    try:
                        size += os.stat(os.path.join(dirpath, name)).st_size
                    except OSError:
                        continue
                    entries += 1
            kinds[kind] = {"entries": entries, "bytes": size}
            total_entries += entries
            total_bytes += size
        return {"root": self.root, "entries": total_entries,
                "bytes": total_bytes, "kinds": kinds}

    def prune(self, max_bytes: int) -> dict:
        """Evict least-recently-used artifacts until ≤ ``max_bytes`` remain.

        Recency is the entry's mtime — readers do not bump it, so this is
        LRU by *write/refresh* time: regenerated (or suffix-merged) entries
        survive, artifacts nothing has rebuilt lately go first.  Removal is
        corruption-safe by construction: entries are only ever whole files,
        so deleting one can at worst cost a later cache miss.  Filesystem
        errors are swallowed (a concurrently removed file is simply not
        ours to count) and emptied shard directories are cleaned up.
        Returns ``{"removed", "removed_bytes", "kept", "kept_bytes"}``.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = []  # (mtime, path, size)
        for kind in self.kinds():
            base = os.path.join(self.root, kind)
            for dirpath, _dirnames, filenames in os.walk(base):
                for name in filenames:
                    # .tmp files from in-flight writers are not entries;
                    # leave them for their owner's os.replace().
                    if not name.endswith(".json"):
                        continue
                    path = os.path.join(dirpath, name)
                    try:
                        info = os.stat(path)
                    except OSError:
                        continue
                    entries.append((info.st_mtime, path, info.st_size))
        entries.sort()  # oldest first
        total = sum(size for _mtime, _path, size in entries)
        removed = removed_bytes = 0
        index = 0
        while total > max_bytes and index < len(entries):
            _mtime, path, size = entries[index]
            index += 1
            try:
                os.remove(path)
            except OSError:
                continue
            self._record("prune", "evictions", size)
            removed += 1
            removed_bytes += size
            total -= size
            parent = os.path.dirname(path)
            try:
                os.rmdir(parent)  # shard dir, only if now empty
            except OSError:
                pass
        return {"removed": removed, "removed_bytes": removed_bytes,
                "kept": len(entries) - removed,
                "kept_bytes": total}

    def stats_line(self) -> str:
        """One-line hit/miss/write summary for logs and diagnostics."""
        return (f"artifact cache {self.root}: {self.hits} hits, "
                f"{self.misses} misses, {self.writes} writes")


_DEFAULT_LOCK = threading.Lock()
_DEFAULT: Dict[str, Optional[ArtifactCache]] = {}


def default_cache_root() -> str:
    """The shared cache directory honoured by every worker process."""
    configured = os.environ.get(CACHE_DIR_ENV)
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "art9")


def default_cache() -> Optional[ArtifactCache]:
    """The process-wide shared cache, or ``None`` when disabled.

    Workers on one machine resolve to the same root (the environment
    variables are inherited across ``spawn``), which is what makes the
    cache *cross-process*: the first worker to reach a grid point writes
    the artifact, every other worker reads it.
    """
    if os.environ.get(CACHE_DISABLE_ENV, "") not in ("", "0"):
        return None
    root = default_cache_root()
    with _DEFAULT_LOCK:
        cache = _DEFAULT.get(root)
        if cache is None:
            cache = _DEFAULT[root] = ArtifactCache(root)
        return cache


def reset_default_cache() -> None:
    """Forget memoised default-cache instances (test isolation helper)."""
    with _DEFAULT_LOCK:
        _DEFAULT.clear()
