"""Hardware-level framework facade: programs in, implementation metrics out."""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Optional, Tuple

from repro.hweval.analyzer import GateLevelAnalyzer, GateLevelReport
from repro.hweval.cntfet import cntfet_32nm_library
from repro.hweval.estimator import DhrystoneMetrics, PerformanceEstimator, PerformanceReport
from repro.hweval.fpga import FPGAEmulationModel, FPGAResourceReport, stratix_v_model
from repro.hweval.technology import TechnologyLibrary
from repro.isa.program import Program
from repro.sim.compiled import CompiledEngine
from repro.sim.engine import FastEngine
from repro.sim.machine import MachineConfig, resolve_machine
from repro.sim.pipeline import PipelineSimulator, PipelineStats

#: Known cycle-accurate execution engines of :meth:`HardwareFramework.simulate`.
SIMULATION_ENGINES = ("fast", "pipeline", "compiled")


@dataclass
class EvaluationResult:
    """Everything the hardware-level framework produced for one program."""

    program_name: str
    pipeline_stats: PipelineStats
    gate_report: GateLevelReport
    fpga_report: FPGAResourceReport
    cntfet_performance: PerformanceReport
    fpga_performance: PerformanceReport
    memory_cells_trits: int

    def summary(self) -> str:
        """Multi-line report combining the cycle, gate and system metrics."""
        parts = [
            f"=== {self.program_name} ===",
            self.pipeline_stats.summary(),
            "",
            self.gate_report.summary(),
            "",
            self.fpga_report.summary(),
            "",
            "-- CNTFET implementation --",
            self.cntfet_performance.summary(),
            "",
            "-- FPGA emulation --",
            self.fpga_performance.summary(),
        ]
        return "\n".join(parts)


class HardwareFramework:
    """The hardware-level evaluation framework as one object.

    It runs the cycle-accurate simulator on the given program, analyses the
    ART-9 datapath netlist against the requested technology libraries and
    combines everything through the performance estimator.

    Three interchangeable execution engines back :meth:`simulate`:

    * ``"fast"`` (the default) — the pre-decoded integer engine of
      :mod:`repro.sim.engine` with its analytic pipeline timing model.  It
      produces bit-identical :class:`PipelineStats` to the stage-by-stage
      simulator (asserted continuously by the differential test suite) at a
      fraction of the cost, which is what makes large workload sweeps viable.
    * ``"pipeline"`` — the original stage-by-stage 5-stage model, kept as
      the structural reference (it models latches, forwarding muxes and the
      HDU explicitly, which the gate-level analyzer attributes against).
    * ``"compiled"`` — the superblock code-generating engine of
      :mod:`repro.sim.compiled`: the program is compiled to specialized
      Python functions (timing model fused in), several times faster again
      than ``"fast"`` on loop-heavy workloads; its codegen artifacts are
      shared across worker processes through :mod:`repro.cache`.
    """

    def __init__(self, technology: Optional[TechnologyLibrary] = None,
                 fpga_model: Optional[FPGAEmulationModel] = None,
                 engine: str = "fast",
                 machine: Optional[MachineConfig] = None,
                 pgo: bool = False):
        if engine not in SIMULATION_ENGINES:
            raise ValueError(
                f"unknown simulation engine {engine!r}; known: {SIMULATION_ENGINES}"
            )
        if pgo and engine != "compiled":
            raise ValueError(
                f"pgo=True requires engine='compiled', got {engine!r}")
        self.technology = technology or cntfet_32nm_library()
        self.fpga_model = fpga_model or stratix_v_model()
        self.analyzer = GateLevelAnalyzer()
        self.engine = engine
        #: Profile-guided recompilation for the compiled engine: profile a
        #: first architectural pass, then overlay hot superblocks with
        #: extended traces chained across observed dominant successors.
        #: Results stay bit-identical; only throughput changes.
        self.pgo = bool(pgo)
        #: Microarchitecture description shared by all three engines (a
        #: :class:`MachineConfig`, a built-in config name or ``None`` for
        #: the paper's default machine).
        self.machine = resolve_machine(machine)

    def simulate(self, program: Program, max_cycles: int = 50_000_000,
                 engine: Optional[str] = None,
                 machine: Optional[MachineConfig] = None) -> PipelineStats:
        """Run the cycle-accurate simulation with the selected engine."""
        stats, _, _ = self.simulate_with_state(program, max_cycles=max_cycles,
                                               engine=engine, machine=machine)
        return stats

    def simulate_with_state(self, program: Program, max_cycles: int = 50_000_000,
                            engine: Optional[str] = None,
                            machine: Optional[MachineConfig] = None,
                            timings: Optional[Dict[str, float]] = None
                            ) -> Tuple[PipelineStats, Dict[str, int], Dict[int, int]]:
        """Simulate and return ``(stats, registers, touched memory)``.

        This is the sweep-runner entry point: both engines expose the same
        architectural snapshot after a run, so job records can carry a
        digest of the final machine state and regression comparisons can
        catch architectural drift, not just cycle drift.  ``machine``
        overrides the framework's configured machine for this call.

        When a ``timings`` dict is passed it is populated with a
        ``codegen_s`` / ``execute_s`` phase breakdown: engine construction
        plus (for the compiled engine) superblock codegen or bundle
        loading, versus the actual run.  The breakdown observes the clock
        only — simulation behaviour is identical with or without it.
        """
        engine = engine or self.engine
        machine = self.machine if machine is None else resolve_machine(machine)
        built = perf_counter()
        if engine == "fast":
            runner = FastEngine(program, machine=machine)
        elif engine == "compiled":
            runner = CompiledEngine(program, machine=machine, pgo=self.pgo)
            runner.prepare(timing=True)
        elif engine == "pipeline":
            runner = PipelineSimulator(program, machine=machine)
        else:
            raise ValueError(
                f"unknown simulation engine {engine!r}; known: {SIMULATION_ENGINES}"
            )
        started = perf_counter()
        if engine == "pipeline":
            stats = runner.run(max_cycles=max_cycles)
        else:
            stats = runner.run_with_stats(max_cycles=max_cycles)
        finished = perf_counter()
        if timings is not None:
            timings["codegen_s"] = started - built
            timings["execute_s"] = finished - started
        return stats, runner.register_snapshot(), runner.tdm.contents()

    def analyze_gates(self) -> GateLevelReport:
        """Run the gate-level analyzer for the configured technology."""
        return self.analyzer.analyze(self.technology)

    def analyze_fpga(self) -> FPGAResourceReport:
        """Run the FPGA emulation resource model."""
        return self.fpga_model.estimate()

    def performance_from_cycles(
        self, cycles: int, iterations: int,
        memory_cells: Optional[int] = None,
    ) -> Tuple[PerformanceReport, PerformanceReport]:
        """``(CNTFET, FPGA)`` performance reports from measured cycle counts.

        This is the report-subsystem entry point: sweep records already
        carry the Dhrystone cycle count and iteration count, so the
        Tables IV/V numbers can be regenerated from stored results without
        re-running any simulation.
        """
        estimator = PerformanceEstimator(
            DhrystoneMetrics(cycles=cycles, iterations=iterations))
        return (
            estimator.for_gate_level(self.analyze_gates(),
                                     memory_cells=memory_cells),
            estimator.for_fpga(self.analyze_fpga(), memory_cells=memory_cells),
        )

    def evaluate(self, program: Program, iterations: int = 1,
                 max_cycles: int = 50_000_000) -> EvaluationResult:
        """Full flow: simulate, analyse and estimate for ``program``.

        ``iterations`` is the number of benchmark iterations the program
        executes (used by the Dhrystone-style DMIPS conversion).
        """
        stats = self.simulate(program, max_cycles=max_cycles)
        gate_report = self.analyze_gates()
        fpga_report = self.analyze_fpga()

        dhrystone = DhrystoneMetrics(
            cycles=stats.cycles,
            iterations=iterations,
            instructions=stats.instructions_committed,
        )
        estimator = PerformanceEstimator(dhrystone)
        memory_cells = program.total_memory_trits()
        return EvaluationResult(
            program_name=program.name,
            pipeline_stats=stats,
            gate_report=gate_report,
            fpga_report=fpga_report,
            cntfet_performance=estimator.for_gate_level(gate_report, memory_cells=memory_cells),
            fpga_performance=estimator.for_fpga(fpga_report, memory_cells=memory_cells),
            memory_cells_trits=memory_cells,
        )
