"""Software-level framework facade: RV-32 sources in, ART-9 programs out."""

from __future__ import annotations

from typing import Tuple

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.riscv.assembler import assemble_riscv
from repro.riscv.program import RVProgram
from repro.workloads.base import Workload
from repro.xlate.translator import TernaryTranslator, TranslationReport


class SoftwareFramework:
    """The software-level compiling framework as one object.

    The three entry points correspond to the three kinds of input a user has:

    * ``compile_riscv_assembly`` — RV-32I assembly text (what a binary
      compiler tool chain emits);
    * ``compile_workload`` — one of the bundled benchmark workloads;
    * ``assemble_ternary`` — native ART-9 assembly, bypassing translation
      (useful for hand-written ternary kernels and for tests).
    """

    def __init__(self, optimize: bool = True):
        self.translator = TernaryTranslator(optimize=optimize)

    def compile_riscv_assembly(self, source: str, name: str = "program"
                               ) -> Tuple[Program, TranslationReport]:
        """Assemble RV-32 ``source`` and translate it to an ART-9 program."""
        rv_program = assemble_riscv(source, name=name)
        return self.translator.translate(rv_program)

    def compile_riscv_program(self, rv_program: RVProgram
                              ) -> Tuple[Program, TranslationReport]:
        """Translate an already-assembled RV-32 program."""
        return self.translator.translate(rv_program)

    def compile_workload(self, workload: Workload) -> Tuple[Program, TranslationReport]:
        """Translate one of the bundled benchmark workloads."""
        return self.translator.translate(workload.rv_program())

    @staticmethod
    def assemble_ternary(source: str, name: str = "program") -> Program:
        """Assemble native ART-9 assembly text (no translation involved)."""
        return assemble(source, name=name)
