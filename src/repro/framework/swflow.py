"""Software-level framework facade: RV-32 sources in, ART-9 programs out."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.riscv.assembler import assemble_riscv
from repro.riscv.program import RVProgram
from repro.workloads.base import Workload, get_workload
from repro.xlate.translator import TernaryTranslator, TranslationReport

#: Pure-data key identifying one compiled workload instance.
WorkloadKey = Tuple[str, Tuple[Tuple[str, object], ...]]


def frozen_params(params: Optional[Mapping[str, object]] = None
                  ) -> Tuple[Tuple[str, object], ...]:
    """Canonical hashable form of a workload-parameter mapping.

    This is the single canonicalizer shared by the compile cache below and
    the sweep runner's content-addressed job identities
    (:mod:`repro.runner.spec`); keeping one definition keeps the
    translate-once-per-worker cache key and the job IDs in agreement.
    """
    return tuple(sorted((params or {}).items()))


def workload_key(name: str, params: Optional[Mapping[str, object]] = None) -> WorkloadKey:
    """Canonical hashable identity of a (workload, params) pair."""
    return name, frozen_params(params)


class SoftwareFramework:
    """The software-level compiling framework as one object.

    The three entry points correspond to the three kinds of input a user has:

    * ``compile_riscv_assembly`` — RV-32I assembly text (what a binary
      compiler tool chain emits);
    * ``compile_workload`` — one of the bundled benchmark workloads;
    * ``assemble_ternary`` — native ART-9 assembly, bypassing translation
      (useful for hand-written ternary kernels and for tests).

    ``compile_named_workload`` is the sweep-oriented fourth entry point: it
    accepts a pure-data workload description (registry name plus builder
    parameters) and memoises the assembled/translated result, so a
    long-lived framework instance — e.g. one per sweep worker process —
    translates each distinct workload instance exactly once no matter how
    many engine/grid jobs reference it.
    """

    def __init__(self, optimize: bool = True):
        self.optimize = optimize
        self.translator = TernaryTranslator(optimize=optimize)
        self._workload_cache: Dict[
            WorkloadKey, Tuple[Program, TranslationReport, Workload]] = {}

    def compile_riscv_assembly(self, source: str, name: str = "program"
                               ) -> Tuple[Program, TranslationReport]:
        """Assemble RV-32 ``source`` and translate it to an ART-9 program."""
        rv_program = assemble_riscv(source, name=name)
        return self.translator.translate(rv_program)

    def compile_riscv_program(self, rv_program: RVProgram
                              ) -> Tuple[Program, TranslationReport]:
        """Translate an already-assembled RV-32 program."""
        return self.translator.translate(rv_program)

    def compile_workload(self, workload: Workload) -> Tuple[Program, TranslationReport]:
        """Translate one of the bundled benchmark workloads."""
        return self.translator.translate(workload.rv_program())

    def compile_named_workload(
        self, name: str, params: Optional[Mapping[str, object]] = None,
    ) -> Tuple[Program, TranslationReport, Workload]:
        """Build and translate a registered workload from pure data, cached.

        ``name`` is a workload registry name and ``params`` the keyword
        arguments of its builder (both picklable, so jobs referencing them
        can cross process boundaries).  Repeated calls with the same
        identity return the cached (program, report, workload) triple.
        """
        key = workload_key(name, params)
        cached = self._workload_cache.get(key)
        if cached is None:
            workload = get_workload(name, **dict(params or {}))
            program, report = self.translator.translate(workload.rv_program())
            cached = (program, report, workload)
            self._workload_cache[key] = cached
        return cached

    @staticmethod
    def assemble_ternary(source: str, name: str = "program") -> Program:
        """Assemble native ART-9 assembly text (no translation involved)."""
        return assemble(source, name=name)
