"""Software-level framework facade: RV-32 sources in, ART-9 programs out."""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.cache import default_cache
from repro.obs import metrics, trace
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.riscv.assembler import assemble_riscv
from repro.riscv.program import RVProgram
from repro.workloads.base import Workload, get_workload
from repro.xlate.translator import (
    TRANSLATOR_VERSION,
    TernaryTranslator,
    TranslationReport,
    instruction_expansion_ratio,
    memory_cell_ratio,
)

#: Pure-data key identifying one compiled workload instance.
WorkloadKey = Tuple[str, Tuple[Tuple[str, object], ...]]


def frozen_params(params: Optional[Mapping[str, object]] = None
                  ) -> Tuple[Tuple[str, object], ...]:
    """Canonical hashable form of a workload-parameter mapping.

    This is the single canonicalizer shared by the compile cache below and
    the sweep runner's content-addressed job identities
    (:mod:`repro.runner.spec`); keeping one definition keeps the
    translate-once-per-worker cache key and the job IDs in agreement.
    """
    return tuple(sorted((params or {}).items()))


def workload_key(name: str, params: Optional[Mapping[str, object]] = None) -> WorkloadKey:
    """Canonical hashable identity of a (workload, params) pair."""
    return name, frozen_params(params)


@dataclass(frozen=True)
class TranslationSummary:
    """The numeric slice of a :class:`TranslationReport` that survives the
    artifact cache.

    Sweep records only consume the counters below (plus the two derived
    ratios), so a cached translation does not need to resurrect the full
    report object — in particular the register allocation, which is an
    artifact of *running* the allocator, not data worth shipping between
    processes.  The property names match ``TranslationReport`` exactly, so
    the two are drop-in interchangeable for record building.
    """

    source_name: str
    rv_instructions: int
    final_instructions: int
    rv_memory_bits: int
    ternary_memory_trits: int
    helpers_used: Tuple[str, ...] = ()

    @property
    def instruction_expansion(self) -> float:
        """Ratio of ART-9 instructions to the original RV-32 instructions."""
        return instruction_expansion_ratio(self.final_instructions,
                                           self.rv_instructions)

    @property
    def memory_cell_ratio(self) -> float:
        """Ternary memory cells relative to binary memory cells (Fig. 5 metric)."""
        return memory_cell_ratio(self.ternary_memory_trits, self.rv_memory_bits)

    @classmethod
    def from_report(cls, report: TranslationReport) -> "TranslationSummary":
        return cls(
            source_name=report.source_name,
            rv_instructions=report.rv_instructions,
            final_instructions=report.final_instructions,
            rv_memory_bits=report.rv_memory_bits,
            ternary_memory_trits=report.ternary_memory_trits,
            helpers_used=tuple(report.helpers_used),
        )

    def to_dict(self) -> dict:
        return {
            "source_name": self.source_name,
            "rv_instructions": self.rv_instructions,
            "final_instructions": self.final_instructions,
            "rv_memory_bits": self.rv_memory_bits,
            "ternary_memory_trits": self.ternary_memory_trits,
            "helpers_used": list(self.helpers_used),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TranslationSummary":
        return cls(
            source_name=str(data["source_name"]),
            rv_instructions=int(data["rv_instructions"]),
            final_instructions=int(data["final_instructions"]),
            rv_memory_bits=int(data["rv_memory_bits"]),
            ternary_memory_trits=int(data["ternary_memory_trits"]),
            helpers_used=tuple(str(h) for h in data.get("helpers_used", ())),
        )


class SoftwareFramework:
    """The software-level compiling framework as one object.

    The three entry points correspond to the three kinds of input a user has:

    * ``compile_riscv_assembly`` — RV-32I assembly text (what a binary
      compiler tool chain emits);
    * ``compile_workload`` — one of the bundled benchmark workloads;
    * ``assemble_ternary`` — native ART-9 assembly, bypassing translation
      (useful for hand-written ternary kernels and for tests).

    ``compile_named_workload`` is the sweep-oriented fourth entry point: it
    accepts a pure-data workload description (registry name plus builder
    parameters) and memoises the assembled/translated result, so a
    long-lived framework instance — e.g. one per sweep worker process —
    translates each distinct workload instance exactly once no matter how
    many engine/grid jobs reference it.
    """

    def __init__(self, optimize: bool = True):
        self.optimize = optimize
        self.translator = TernaryTranslator(optimize=optimize)
        self._workload_cache: Dict[
            WorkloadKey, Tuple[Program, TranslationReport, Workload]] = {}
        self._summary_cache: Dict[
            WorkloadKey, Tuple[Program, TranslationSummary, Workload]] = {}
        #: Provenance of the most recent ``compile_named_workload_cached``
        #: result: ``"memo"`` (in-process), ``"cache"`` (artifact cache),
        #: or ``"built"`` (translated from scratch).  Sweep workers read
        #: this to stamp a ``cache_hit`` flag on their records.
        self.last_compile_source: Optional[str] = None

    def compile_riscv_assembly(self, source: str, name: str = "program"
                               ) -> Tuple[Program, TranslationReport]:
        """Assemble RV-32 ``source`` and translate it to an ART-9 program."""
        rv_program = assemble_riscv(source, name=name)
        return self.translator.translate(rv_program)

    def compile_riscv_program(self, rv_program: RVProgram
                              ) -> Tuple[Program, TranslationReport]:
        """Translate an already-assembled RV-32 program."""
        return self.translator.translate(rv_program)

    def compile_workload(self, workload: Workload) -> Tuple[Program, TranslationReport]:
        """Translate one of the bundled benchmark workloads."""
        return self.translator.translate(workload.rv_program())

    def compile_named_workload(
        self, name: str, params: Optional[Mapping[str, object]] = None,
    ) -> Tuple[Program, TranslationReport, Workload]:
        """Build and translate a registered workload from pure data, cached.

        ``name`` is a workload registry name and ``params`` the keyword
        arguments of its builder (both picklable, so jobs referencing them
        can cross process boundaries).  Repeated calls with the same
        identity return the cached (program, report, workload) triple.
        """
        key = workload_key(name, params)
        cached = self._workload_cache.get(key)
        if cached is None:
            workload = get_workload(name, **dict(params or {}))
            program, report = self.translator.translate(workload.rv_program())
            cached = (program, report, workload)
            self._workload_cache[key] = cached
        return cached

    def compile_named_workload_cached(
        self, name: str, params: Optional[Mapping[str, object]] = None,
        cache: object = "default",
    ) -> Tuple[Program, TranslationSummary, Workload]:
        """Cache-assisted :meth:`compile_named_workload` for sweep workers.

        Consults the cross-process artifact cache (:mod:`repro.cache`)
        before translating: the key is (workload, params, a digest of the
        workload's generated RV-32 source, optimize,
        :data:`TRANSLATOR_VERSION`), the payload the serialised program
        plus its :class:`TranslationSummary`.  A whole worker fleet on one
        cache therefore translates each grid point exactly once — the
        first worker to reach it pays, everyone else deserialises.
        Digesting the RV source means editing a workload *builder*
        invalidates its entries automatically; only translation-pass
        changes need a ``TRANSLATOR_VERSION`` bump.

        ``cache`` accepts an explicit :class:`ArtifactCache`, ``None``
        (bypass the disk entirely), or the default marker.
        """
        if cache == "default":
            cache = default_cache()
        key = workload_key(name, params)
        memo = self._summary_cache.get(key)
        if memo is not None:
            self.last_compile_source = "memo"
            return memo
        started = time.perf_counter()
        workload = get_workload(name, **dict(params or {}))
        key_material = {
            "workload": name,
            "params": [[param, value] for param, value in key[1]],
            "rv_source_sha256": hashlib.sha256(
                workload.rv_source.encode("utf-8")).hexdigest(),
            "optimize": self.optimize,
            "translator_version": TRANSLATOR_VERSION,
        }
        if cache is not None:
            hit = cache.get_json("xlate", key_material)
            if hit is not None:
                try:
                    resolved = (
                        Program.from_dict(hit["program"]),
                        TranslationSummary.from_dict(hit["summary"]),
                        workload,
                    )
                except (KeyError, TypeError, ValueError):
                    resolved = None  # malformed artifact: fall through
                if resolved is not None:
                    self._summary_cache[key] = resolved
                    self.last_compile_source = "cache"
                    self._note_xlate(name, resolved[1],
                                     time.perf_counter() - started, "cache")
                    return resolved
        with trace.span("xlate", workload=name):
            program, report, workload = self.compile_named_workload(name, params)
        summary = TranslationSummary.from_report(report)
        if cache is not None:
            cache.put_json("xlate", key_material, {
                "program": program.to_dict(),
                "summary": summary.to_dict(),
            })
        resolved = (program, summary, workload)
        self._summary_cache[key] = resolved
        self.last_compile_source = "built"
        self._note_xlate(name, summary, time.perf_counter() - started, "built")
        return resolved

    @staticmethod
    def _note_xlate(name: str, summary: "TranslationSummary",
                    elapsed: float, source: str) -> None:
        """Record translation telemetry (wall time + instruction counts)."""
        metrics.histogram("xlate.seconds").observe(elapsed)
        metrics.counter(f"xlate.{source}").inc()
        metrics.counter("xlate.rv_instructions").inc(summary.rv_instructions)
        metrics.counter("xlate.final_instructions").inc(
            summary.final_instructions)

    @staticmethod
    def assemble_ternary(source: str, name: str = "program") -> Program:
        """Assemble native ART-9 assembly text (no translation involved)."""
        return assemble(source, name=name)
