"""High-level facades over the two frameworks of the paper.

:class:`SoftwareFramework` wraps the RV-32 assembler and the translation
pipeline ("software-level compiling framework", Sec. III-A);
:class:`HardwareFramework` wraps the cycle-accurate simulator, the
gate-level analyzer and the performance estimator ("hardware-level
evaluation framework", Sec. III-B).  Together they expose the whole flow of
the paper in a few calls:

>>> from repro.framework import SoftwareFramework, HardwareFramework
>>> from repro.workloads import build_dhrystone
>>> workload = build_dhrystone()
>>> sw = SoftwareFramework()
>>> art9_program, report = sw.compile_workload(workload)
>>> hw = HardwareFramework()
>>> evaluation = hw.evaluate(art9_program, iterations=workload.iterations)
"""

from repro.framework.swflow import SoftwareFramework, TranslationSummary
from repro.framework.hwflow import EvaluationResult, HardwareFramework

__all__ = ["SoftwareFramework", "TranslationSummary", "HardwareFramework",
           "EvaluationResult"]
