"""Differential runner: one program, five executors, zero tolerance.

``run_differential`` executes a program on the fast engine, the compiled
(superblock-codegen) engine, a single-lane batch engine and the functional
simulator (always) and on the cycle-accurate pipeline simulator
(optionally) and compares every piece of architectural state the executors
share:

* register file contents (all nine registers, by name);
* every touched TDM cell (including explicitly written zeros);
* final PC and halt flag (functional semantics; the pipeline's fetch-ahead
  PC is architecturally meaningless and therefore not compared);
* dynamic instruction count and per-mnemonic instruction mix;
* the full :class:`PipelineStats` record — cycles, stalls, flush bubbles,
  branch outcomes and all three forwarding counters — from *both* the fast
  engine's analytic timing model and the compiled engine's fused one,
  against the stage-by-stage pipeline simulator.

``fuzz`` drives the generator/runner pair over a seed range, collecting
failures instead of raising so a fuzzing session reports every divergence.
``fuzz_batched`` widens every seed into several data-variant lanes and runs
them through one multi-lane :class:`~repro.sim.batch.BatchEngine`, pinning
each lane bit-identically to the serial engines — this is what exercises
the batch engine's divergence/reconvergence machinery, which a single lane
cannot reach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.isa.program import Program
from repro.sim.batch import BatchEngine
from repro.sim.compiled import CompiledEngine
from repro.sim.engine import FastEngine
from repro.sim.functional import ExecutionResult, FunctionalSimulator, SimulationError
from repro.sim.machine import MachineConfig, resolve_machine
from repro.sim.pipeline import PipelineSimulator
from repro.testing.generator import (
    GeneratorConfig,
    generate_data_variants,
    generate_program,
)

#: PipelineStats fields compared between the pipeline simulator and the fast
#: engine's analytic timing model.
STATS_FIELDS = (
    "cycles",
    "instructions_committed",
    "load_use_stalls",
    "control_flush_bubbles",
    "taken_branches",
    "not_taken_branches",
    "jumps",
    "ex_forwards",
    "mem_forwards",
    "id_forwards",
)


class DifferentialMismatch(AssertionError):
    """Raised by :func:`run_differential` when two executors disagree."""


@dataclass
class DifferentialOutcome:
    """Comparison record of one program across the executors."""

    program_name: str
    instructions_executed: int
    cycles: Optional[int] = None
    mismatches: List[str] = field(default_factory=list)
    #: Set when every executor agreed the program exceeded the instruction
    #: budget (architectural state is then not comparable).
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.mismatches


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing session."""

    programs_run: int = 0
    instructions_executed: int = 0
    budget_exhausted: int = 0
    failures: List[DifferentialOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        note = (
            f", {self.budget_exhausted} hit the instruction budget"
            if self.budget_exhausted else ""
        )
        return (
            f"differential fuzz: {self.programs_run} programs, "
            f"{self.instructions_executed} instructions executed{note}, {status}"
        )


def _compare_executions(actual: ExecutionResult, reference: ExecutionResult,
                        mismatches: List[str], label: str = "fast") -> None:
    if actual.registers != reference.registers:
        diffs = {
            name: (actual.registers[name], reference.registers[name])
            for name in actual.registers
            if actual.registers[name] != reference.registers.get(name)
        }
        mismatches.append(f"registers differ ({label}, functional): {diffs}")
    if actual.memory != reference.memory:
        keys = set(actual.memory) | set(reference.memory)
        diffs = {
            addr: (actual.memory.get(addr), reference.memory.get(addr))
            for addr in sorted(keys)
            if actual.memory.get(addr) != reference.memory.get(addr)
        }
        mismatches.append(f"memory differs ({label}, functional): {diffs}")
    if actual.pc != reference.pc:
        mismatches.append(
            f"final PC differs: {label}={actual.pc} functional={reference.pc}")
    if actual.halted != reference.halted:
        mismatches.append(
            f"halt flag differs: {label}={actual.halted} functional={reference.halted}"
        )
    if actual.instructions_executed != reference.instructions_executed:
        mismatches.append(
            "instruction count differs: "
            f"{label}={actual.instructions_executed} "
            f"functional={reference.instructions_executed}"
        )
    if actual.instruction_mix != reference.instruction_mix:
        mismatches.append(
            f"instruction mix differs: {label}={actual.instruction_mix} "
            f"functional={reference.instruction_mix}"
        )


def run_differential(
    program: Program,
    max_instructions: int = 200_000,
    check_pipeline: bool = True,
    raise_on_mismatch: bool = True,
    machine: Optional[MachineConfig] = None,
) -> DifferentialOutcome:
    """Execute ``program`` on every executor and compare the results.

    A :class:`SimulationError` (instruction budget exceeded, PC escape) is
    itself differential evidence: the fast engine, the compiled engine, the
    single-lane batch engine and the functional simulator must all fail in
    the same way, otherwise one of them terminated a program the others did
    not.  When they fail identically the outcome is flagged
    ``budget_exhausted`` and the pipeline cross-check is skipped.

    ``machine`` (a :class:`MachineConfig` or built-in config name) selects
    the microarchitecture every cycle-accurate executor is built with, so
    the same five-way agreement can be asserted at every design-space
    corner; architectural results are machine-independent by construction
    and stay pinned to the functional simulator.
    """
    machine = resolve_machine(machine)
    fast_error: Optional[str] = None
    compiled_error: Optional[str] = None
    batch_error: Optional[str] = None
    reference_error: Optional[str] = None
    try:
        fast = FastEngine(program, machine=machine).run(
            max_instructions=max_instructions)
    except SimulationError as exc:
        fast_error = str(exc)
    try:
        # cache=None: generated fuzz programs are one-shot, so persisting
        # their codegen artifacts would only pollute the shared cache (the
        # in-process memo still de-duplicates the two engine builds below).
        compiled = CompiledEngine(program, cache=None, machine=machine).run(
            max_instructions=max_instructions)
    except SimulationError as exc:
        compiled_error = str(exc)
    batch_lane = BatchEngine([program], machine=machine).run(
        max_instructions=max_instructions)[0]
    batch = batch_lane.result
    batch_error = batch_lane.error
    functional = FunctionalSimulator(program)
    try:
        reference = functional.run(max_instructions=max_instructions)
    except SimulationError as exc:
        reference_error = str(exc)

    if (fast_error is not None or compiled_error is not None
            or batch_error is not None or reference_error is not None):
        outcome = DifferentialOutcome(
            program_name=program.name,
            instructions_executed=0,
            budget_exhausted=True,
        )
        if (fast_error != reference_error or compiled_error != reference_error
                or batch_error != reference_error):
            outcome.mismatches.append(
                "executors disagree on termination: "
                f"fast={fast_error!r} compiled={compiled_error!r} "
                f"batch={batch_error!r} functional={reference_error!r}"
            )
        if raise_on_mismatch and not outcome.ok:
            raise DifferentialMismatch(
                f"{program.name}: " + "; ".join(outcome.mismatches)
            )
        return outcome

    outcome = DifferentialOutcome(
        program_name=program.name,
        instructions_executed=reference.instructions_executed,
    )
    _compare_executions(fast, reference, outcome.mismatches, label="fast")
    _compare_executions(compiled, reference, outcome.mismatches, label="compiled")
    _compare_executions(batch, reference, outcome.mismatches, label="batch")

    if check_pipeline:
        pipeline = PipelineSimulator(program, machine=machine)
        # Worst case per instruction is one full redirect (plus a possible
        # load-use stall), so scale the budget with the machine's penalty.
        per_instruction = machine.redirect_penalty + machine.load_use_penalty + 1
        cycle_budget = (2 * per_instruction * max_instructions
                        + machine.fill_cycles + 16)
        pipeline_stats = pipeline.run(max_cycles=cycle_budget)
        fast_stats = FastEngine(program, machine=machine).run_with_stats(
            max_cycles=cycle_budget)
        compiled_stats = CompiledEngine(
            program, cache=None, machine=machine).run_with_stats(
                max_cycles=cycle_budget)
        batch_lane_stats = BatchEngine([program], machine=machine).run_with_stats(
            max_cycles=cycle_budget)[0]
        batch_stats = batch_lane_stats.stats
        if batch_stats is None:
            outcome.mismatches.append(
                "batch engine produced no stats within the cycle budget: "
                f"{batch_lane_stats.error!r}"
            )
        outcome.cycles = pipeline_stats.cycles

        if pipeline.register_snapshot() != fast.registers:
            outcome.mismatches.append(
                f"pipeline registers differ from fast engine: "
                f"{pipeline.register_snapshot()} vs {fast.registers}"
            )
        if pipeline.tdm.contents() != fast.memory:
            outcome.mismatches.append("pipeline memory differs from fast engine")
        stat_lanes = [("fast", fast_stats), ("compiled", compiled_stats)]
        if batch_stats is not None:
            stat_lanes.append(("batch", batch_stats))
        for label, stats in stat_lanes:
            for field_name in STATS_FIELDS:
                model_value = getattr(stats, field_name)
                pipe_value = getattr(pipeline_stats, field_name)
                if model_value != pipe_value:
                    outcome.mismatches.append(
                        f"stats.{field_name} differs: {label}={model_value} "
                        f"pipeline={pipe_value}"
                    )
            if stats.instruction_mix != pipeline_stats.instruction_mix:
                outcome.mismatches.append(
                    f"committed instruction mix differs between the {label} "
                    "timing model and the pipeline"
                )

    if raise_on_mismatch and not outcome.ok:
        raise DifferentialMismatch(
            f"{program.name}: " + "; ".join(outcome.mismatches)
        )
    return outcome


def fuzz(
    count: int = 100,
    seed: int = 0,
    config: Optional[GeneratorConfig] = None,
    max_instructions: int = 200_000,
    check_pipeline: bool = True,
    machine: Optional[MachineConfig] = None,
) -> FuzzReport:
    """Run ``count`` generated programs differentially, collecting failures.

    Seeds ``seed .. seed+count-1`` are used one per program, so any failure
    is reproducible with ``run_differential(generate_program(bad_seed))``.
    ``machine`` selects the microarchitecture config all cycle-accurate
    executors run under (default: the paper machine).
    """
    machine = resolve_machine(machine)
    report = FuzzReport()
    for offset in range(count):
        program = generate_program(seed + offset, config)
        outcome = run_differential(
            program,
            max_instructions=max_instructions,
            check_pipeline=check_pipeline,
            raise_on_mismatch=False,
            machine=machine,
        )
        report.programs_run += 1
        report.instructions_executed += outcome.instructions_executed
        if outcome.budget_exhausted:
            report.budget_exhausted += 1
        if not outcome.ok:
            report.failures.append(outcome)
    return report


def run_batch_differential(
    programs: "List[Program]",
    max_instructions: int = 200_000,
    check_stats: bool = True,
    raise_on_mismatch: bool = True,
    machine: Optional[MachineConfig] = None,
) -> DifferentialOutcome:
    """Pin every lane of one multi-lane batch to the serial fast engine.

    ``programs`` must share one instruction stream (the
    :class:`~repro.sim.batch.BatchEngine` contract); the lanes typically
    differ in initial data memory, which is exactly what drives the batch
    engine through its divergence/reconvergence machinery.  Each lane's
    architectural result, pipeline statistics and error disposition must
    match a fresh serial :class:`FastEngine` run of that lane's program
    bit-for-bit.  The fast engine is itself pinned to the functional
    simulator and the pipeline by :func:`run_differential`, so agreement
    here closes the five-way loop for multi-lane execution.
    """
    machine = resolve_machine(machine)
    engine = BatchEngine(programs, machine=machine)
    if check_stats:
        per_instruction = machine.redirect_penalty + machine.load_use_penalty + 1
        cycle_budget = (2 * per_instruction * max_instructions
                        + machine.fill_cycles + 16)
        lanes = engine.run_with_stats(max_cycles=cycle_budget)
    else:
        lanes = engine.run(max_instructions=max_instructions)

    outcome = DifferentialOutcome(
        program_name=programs[0].name,
        instructions_executed=0,
    )
    exhausted_lanes = 0
    for lane, program in enumerate(programs):
        lane_outcome = lanes[lane]
        serial_error: Optional[str] = None
        serial_result: Optional[ExecutionResult] = None
        try:
            serial_result = FastEngine(program, machine=machine).run(
                max_instructions=max_instructions)
        except SimulationError as exc:
            serial_error = str(exc)

        if serial_error is not None or lane_outcome.error is not None:
            if lane_outcome.error != serial_error:
                outcome.mismatches.append(
                    f"lane {lane}: termination disagrees: "
                    f"batch={lane_outcome.error!r} fast={serial_error!r}"
                )
            else:
                exhausted_lanes += 1
            continue

        _compare_executions(
            lane_outcome.result, serial_result, outcome.mismatches,
            label=f"batch-lane-{lane}")
        outcome.instructions_executed += serial_result.instructions_executed

        if check_stats:
            serial_stats = FastEngine(program, machine=machine).run_with_stats(
                max_cycles=cycle_budget)
            if outcome.cycles is None:
                outcome.cycles = serial_stats.cycles
            for field_name in STATS_FIELDS:
                batch_value = getattr(lane_outcome.stats, field_name)
                serial_value = getattr(serial_stats, field_name)
                if batch_value != serial_value:
                    outcome.mismatches.append(
                        f"lane {lane}: stats.{field_name} differs: "
                        f"batch={batch_value} fast={serial_value}"
                    )
            if lane_outcome.stats.instruction_mix != serial_stats.instruction_mix:
                outcome.mismatches.append(
                    f"lane {lane}: committed instruction mix differs between "
                    "the batch and fast timing models"
                )

    outcome.budget_exhausted = exhausted_lanes == len(programs)
    if raise_on_mismatch and not outcome.ok:
        raise DifferentialMismatch(
            f"{programs[0].name}: " + "; ".join(outcome.mismatches)
        )
    return outcome


def fuzz_batched(
    count: int = 100,
    seed: int = 0,
    config: Optional[GeneratorConfig] = None,
    lanes: int = 4,
    max_instructions: int = 200_000,
    check_stats: bool = True,
    machine: Optional[MachineConfig] = None,
) -> FuzzReport:
    """Batched differential fuzzing: ``lanes`` data variants per seed.

    Each seed's generated program is widened into ``lanes`` batchable data
    variants (:func:`generate_data_variants`), executed in one multi-lane
    :class:`~repro.sim.batch.BatchEngine`, and every lane is pinned to a
    serial :class:`FastEngine` run.  ``lanes=1`` degrades to the serial
    five-way check of :func:`run_differential` per seed, which is also the
    fallback used for any seed whose program cannot be widened (a program
    with no data segment diverges nowhere, but still runs batched).
    """
    machine = resolve_machine(machine)
    report = FuzzReport()
    for offset in range(count):
        program_seed = seed + offset
        program = generate_program(program_seed, config)
        variants = generate_data_variants(program, max(lanes, 1), program_seed)
        if len(variants) > 1:
            outcome = run_batch_differential(
                variants,
                max_instructions=max_instructions,
                check_stats=check_stats,
                raise_on_mismatch=False,
                machine=machine,
            )
        else:
            outcome = run_differential(
                program,
                max_instructions=max_instructions,
                check_pipeline=check_stats,
                raise_on_mismatch=False,
                machine=machine,
            )
        report.programs_run += 1
        report.instructions_executed += outcome.instructions_executed
        if outcome.budget_exhausted:
            report.budget_exhausted += 1
        if not outcome.ok:
            report.failures.append(outcome)
    return report
