"""Randomized differential testing for the ART-9 executors.

The golden functional model is only as trustworthy as the programs thrown at
it.  This package grows the confidence axis of the reproduction: a seeded
random program generator (:mod:`repro.testing.generator`) produces
always-terminating ART-9 programs covering the whole ISA — straight-line
arithmetic, bounded loops, forward branches, jumps and scattered
loads/stores — and the differential runner (:mod:`repro.testing.differential`)
executes each program on all five executors: the fast engine, the compiled
superblock-codegen engine, the batched vectorized engine (as a one-lane
batch), the functional simulator and the cycle-accurate pipeline, asserting
identical architectural state (registers, memory, PC, halt flag) and
identical pipeline statistics from every analytic timing model.

Run it from the command line with ``art9 fuzz --count 500 --seed 0``.

The package also hosts the fault-injection harness for the distributed
sweep service (:mod:`repro.testing.chaos`, ``art9 chaos``): real
coordinator + worker fleets driven to completion while this side kills,
freezes and corrupts them, gated on byte-identical canonical records
against an undisturbed serial run.
"""

from repro.testing.generator import (
    GeneratorConfig,
    generate_data_variants,
    generate_program,
)
from repro.testing.differential import (
    DifferentialMismatch,
    DifferentialOutcome,
    FuzzReport,
    fuzz,
    fuzz_batched,
    run_batch_differential,
    run_differential,
)

__all__ = [
    "GeneratorConfig",
    "generate_data_variants",
    "generate_program",
    "DifferentialMismatch",
    "DifferentialOutcome",
    "FuzzReport",
    "fuzz",
    "fuzz_batched",
    "run_batch_differential",
    "run_differential",
]


_CHAOS_EXPORTS = ("CHAOS_SCENARIOS", "ChaosError", "ChaosResult",
                  "run_scenario")
__all__ += list(_CHAOS_EXPORTS)


def __getattr__(name):
    # The chaos harness imports repro.service, which imports the worker
    # module, which imports this package — resolving chaos lazily (PEP
    # 562) keeps the convenience exports without the import cycle.
    if name in _CHAOS_EXPORTS:
        from repro.testing import chaos
        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
