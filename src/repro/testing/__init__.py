"""Randomized differential testing for the ART-9 executors.

The golden functional model is only as trustworthy as the programs thrown at
it.  This package grows the confidence axis of the reproduction: a seeded
random program generator (:mod:`repro.testing.generator`) produces
always-terminating ART-9 programs covering the whole ISA — straight-line
arithmetic, bounded loops, forward branches, jumps and scattered
loads/stores — and the differential runner (:mod:`repro.testing.differential`)
executes each program on all five executors: the fast engine, the compiled
superblock-codegen engine, the batched vectorized engine (as a one-lane
batch), the functional simulator and the cycle-accurate pipeline, asserting
identical architectural state (registers, memory, PC, halt flag) and
identical pipeline statistics from every analytic timing model.

Run it from the command line with ``art9 fuzz --count 500 --seed 0``.
"""

from repro.testing.generator import (
    GeneratorConfig,
    generate_data_variants,
    generate_program,
)
from repro.testing.differential import (
    DifferentialMismatch,
    DifferentialOutcome,
    FuzzReport,
    fuzz,
    fuzz_batched,
    run_batch_differential,
    run_differential,
)

__all__ = [
    "GeneratorConfig",
    "generate_data_variants",
    "generate_program",
    "DifferentialMismatch",
    "DifferentialOutcome",
    "FuzzReport",
    "fuzz",
    "fuzz_batched",
    "run_batch_differential",
    "run_differential",
]
