"""Fault-injection (chaos) harness for the distributed sweep service.

Every scenario drives a *real* fleet — an ``art9 serve`` coordinator and
``art9 work`` workers as separate OS processes talking TCP — while this
process plays the adversary: ``SIGKILL`` the coordinator mid-run (then
``--resume`` it), ``SIGKILL`` or ``SIGSTOP`` workers, tear the tails of
the results store and journal.  When the dust settles the finished run's
canonical records (volatile fields stripped, sorted) must be *byte
identical* to an undisturbed serial run of the same spec — the service's
whole crash-safety contract in one assertion.

Scenarios (``art9 chaos --scenario NAME``):

``kill-coordinator``
    SIGKILL the coordinator after the first records land, restart it with
    ``art9 serve --resume``; the worker fleet rides the outage on its
    reconnect backoff and the journal replay requeues whatever was leased.
``kill-worker``
    SIGKILL one of two workers mid-run; the watchdog requeues its job and
    the survivor finishes the run with zero lost jobs.
``wedge-worker``
    SIGSTOP one worker (alive TCP socket, silent process) until the
    heartbeat watchdog requeues its job, then SIGKILL it.
``torn-tail``
    SIGKILL coordinator *and* workers, then truncate the final line of
    ``results.jsonl`` and append garbage to the journal — the torn-write
    disk state a real power loss leaves — and resume.

The grid is dhrystone on the pipeline engine with iteration counts sized
so each job takes a few hundred milliseconds: long enough that kills land
mid-run, short enough for CI.  ``seed`` jitters the kill timing so
repeated CI runs explore different interleavings while any one run stays
reproducible.
"""

from __future__ import annotations

import contextlib
import json
import os
import random
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import repro
from repro.runner.spec import SweepSpec
from repro.runner.store import RunStore, canonical_record
from repro.service.journal import journal_path, replay_journal

#: Scenario names accepted by ``run_scenario`` / ``art9 chaos``.
CHAOS_SCENARIOS = ("kill-coordinator", "kill-worker", "wedge-worker",
                   "torn-tail")

#: Shared auth token every chaos fleet runs with, so the handshake path is
#: exercised by every scenario for free.
CHAOS_AUTH_TOKEN = "chaos-shared-token"

_COMPLETION_TIMEOUT = 300.0
_RECORD_POLL_TIMEOUT = 120.0


class ChaosError(RuntimeError):
    """A scenario could not be driven to a verdict (infrastructure trouble,
    timeouts) — distinct from a clean ``ok=False`` contract violation."""


@dataclass
class ChaosResult:
    """Verdict of one scenario run."""

    scenario: str
    seed: int
    ok: bool
    detail: str
    run_dir: str
    reference_dir: str
    events: List[str] = field(default_factory=list)

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        return (f"chaos {self.scenario} (seed {self.seed}): {verdict} — "
                f"{self.detail}")


def chaos_spec() -> SweepSpec:
    """The sweep grid every scenario runs: 6 jobs of a few hundred ms."""
    return SweepSpec(
        workloads=("dhrystone",),
        engines=("pipeline",),
        optimize=(True, False),
        params={"dhrystone": [{"iterations": 120}, {"iterations": 240},
                              {"iterations": 360}]},
    )


def _free_port() -> int:
    """A currently-free TCP port the resumed coordinator can re-bind."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _cli_env() -> dict:
    """Subprocess environment that can ``python -m repro.cli``."""
    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (package_root if not existing
                         else package_root + os.pathsep + existing)
    return env


class _Fleet:
    """Spawns and reaps the coordinator/worker subprocesses of a scenario."""

    def __init__(self, scratch: str, events: List[str]):
        self.scratch = scratch
        self.events = events
        self._env = _cli_env()
        self._procs: List[Tuple[str, subprocess.Popen]] = []
        self._t0 = time.monotonic()

    def log(self, message: str) -> None:
        self.events.append(f"[{time.monotonic() - self._t0:7.2f}s] {message}")

    def spawn(self, name: str, cli_args: List[str]) -> subprocess.Popen:
        log_path = os.path.join(self.scratch, f"{name}.log")
        handle = open(log_path, "w", encoding="utf-8")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *cli_args],
            stdout=handle, stderr=subprocess.STDOUT, env=self._env)
        handle.close()  # the child inherited the descriptor
        self._procs.append((name, proc))
        self.log(f"spawned {name} (pid {proc.pid}): art9 {' '.join(cli_args)}")
        return proc

    def sigkill(self, name: str, proc: subprocess.Popen) -> None:
        proc.kill()
        proc.wait()
        self.log(f"SIGKILLed {name} (pid {proc.pid})")

    def sigstop(self, name: str, proc: subprocess.Popen) -> None:
        os.kill(proc.pid, signal.SIGSTOP)
        self.log(f"SIGSTOPped {name} (pid {proc.pid})")

    def wait(self, name: str, proc: subprocess.Popen,
             timeout: float) -> int:
        try:
            code = proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            raise ChaosError(
                f"{name} did not finish within {timeout:.0f}s "
                f"(log: {os.path.join(self.scratch, name + '.log')})")
        self.log(f"{name} exited with code {code}")
        return code

    def reap(self) -> None:
        """Kill anything still alive (failure paths must not leak procs)."""
        for name, proc in self._procs:
            if proc.poll() is None:
                with contextlib.suppress(ProcessLookupError):
                    os.kill(proc.pid, signal.SIGCONT)
                proc.kill()
                proc.wait()
                self.log(f"reaped {name} (pid {proc.pid})")


def _count_records(results_path: str) -> int:
    if not os.path.exists(results_path):
        return 0
    count = 0
    with open(results_path, "rb") as handle:
        for line in handle:
            if line.endswith(b"\n") and line.strip():
                count += 1
    return count


def _wait_for_records(fleet: _Fleet, results_path: str, count: int,
                      timeout: float = _RECORD_POLL_TIMEOUT) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        seen = _count_records(results_path)
        if seen >= count:
            fleet.log(f"{seen} records on disk (waited for {count})")
            return seen
        time.sleep(0.05)
    raise ChaosError(f"no {count} records within {timeout:.0f}s "
                     f"(have {_count_records(results_path)})")


def _wait_for_journal_event(fleet: _Fleet, run_dir: str, event: str,
                            timeout: float = _RECORD_POLL_TIMEOUT,
                            **match) -> dict:
    deadline = time.monotonic() + timeout
    path = journal_path(run_dir)
    while time.monotonic() < deadline:
        for entry in replay_journal(path):
            if entry.get("event") != event:
                continue
            if all(entry.get(key) == value for key, value in match.items()):
                fleet.log(f"journal shows {event} event: {entry}")
                return entry
        time.sleep(0.05)
    raise ChaosError(f"journal never showed a {event} event matching {match}")


def _tear_results_tail(path: str) -> None:
    """Truncate the final record mid-line (what a power loss leaves)."""
    with open(path, "rb") as handle:
        data = handle.read()
    if data.endswith(b"\n"):
        data = data[:-1]
    data = data[:max(0, len(data) - 9)]
    with open(path, "wb") as handle:
        handle.write(data)


def _append_journal_garbage(path: str) -> None:
    with open(path, "ab") as handle:
        handle.write(b'{"event":"leased","job_id":"torn-mid-wri')


def _serve_args(run_dir: str, spec_path: str, port: int,
                extra: Optional[List[str]] = None) -> List[str]:
    return ["serve", "--out", run_dir, "--spec", spec_path,
            "--host", "127.0.0.1", "--port", str(port),
            "--heartbeat-timeout", "3", "--auth-token", CHAOS_AUTH_TOKEN,
            "--trace", *(extra or [])]


def _resume_args(run_dir: str, port: int,
                 extra: Optional[List[str]] = None) -> List[str]:
    return ["serve", "--resume", run_dir,
            "--host", "127.0.0.1", "--port", str(port),
            "--heartbeat-timeout", "3", "--auth-token", CHAOS_AUTH_TOKEN,
            "--trace", *(extra or [])]


def _worker_args(port: int, name: str) -> List[str]:
    return ["work", "--connect", f"127.0.0.1:{port}", "--name", name,
            "--auth-token", CHAOS_AUTH_TOKEN,
            # Generous budget: the coordinator outage in kill-coordinator
            # lasts seconds (python startup + journal replay), and the
            # fleet must still be there when it comes back.
            "--retry-seconds", "30", "--max-retries", "40",
            "--retry-window", "180",
            "--heartbeat-interval", "0.5"]


def _run_reference(spec: SweepSpec, reference_dir: str) -> None:
    """Undisturbed serial run of the same spec (the comparison baseline)."""
    from repro.runner.orchestrator import run_sweep
    outcome = run_sweep(spec, reference_dir, jobs=1)
    if not outcome.ok:
        raise ChaosError(
            f"reference serial run failed: {outcome.summary()} — the "
            "scenario verdict would be meaningless")


def _compare_canonical(run_dir: str, reference_dir: str) -> Tuple[bool, str]:
    """Byte-identity of the two runs' canonical record sets."""
    disturbed = sorted(canonical_record(record)
                       for record in RunStore(run_dir).records())
    reference = sorted(canonical_record(record)
                       for record in RunStore(reference_dir).records())
    if disturbed == reference:
        return True, (f"{len(disturbed)} canonical records byte-identical "
                      "to the undisturbed serial run")
    only_disturbed = [r for r in disturbed if r not in reference]
    only_reference = [r for r in reference if r not in disturbed]
    return False, (
        f"canonical records diverge: {len(disturbed)} vs "
        f"{len(reference)} records; {len(only_disturbed)} only in the "
        f"disturbed run, {len(only_reference)} only in the reference "
        f"(first diff: {(only_disturbed or only_reference)[0][:200]})")


def _lost_records(run_dir: str) -> List[dict]:
    return [record for record in RunStore(run_dir).records()
            if "lost after" in str(record.get("error", ""))]


def _write_spec(spec: SweepSpec, scratch: str) -> str:
    spec_path = os.path.join(scratch, "spec.json")
    with open(spec_path, "w", encoding="utf-8") as handle:
        json.dump(spec.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return spec_path


# -- scenarios ---------------------------------------------------------------


def _scenario_kill_coordinator(fleet: _Fleet, spec_path: str, run_dir: str,
                               rng: random.Random) -> List[str]:
    port = _free_port()
    results = os.path.join(run_dir, "results.jsonl")
    serve = fleet.spawn("serve", _serve_args(run_dir, spec_path, port))
    workers = [fleet.spawn(f"worker-{i}", _worker_args(port, f"chaos-w{i}"))
               for i in range(2)]
    _wait_for_records(fleet, results, 2)
    time.sleep(rng.uniform(0.0, 0.3))
    fleet.sigkill("serve", serve)
    resume = fleet.spawn("serve-resume", _resume_args(run_dir, port))
    code = fleet.wait("serve-resume", resume, _COMPLETION_TIMEOUT)
    problems = [] if code == 0 else [f"resumed coordinator exited {code}"]
    for i, worker in enumerate(workers):
        wcode = fleet.wait(f"worker-{i}", worker, 60.0)
        if wcode != 0:
            problems.append(f"worker-{i} exited {wcode} "
                            "(should ride out the outage and finish)")
    return problems


def _scenario_kill_worker(fleet: _Fleet, spec_path: str, run_dir: str,
                          rng: random.Random) -> List[str]:
    port = _free_port()
    results = os.path.join(run_dir, "results.jsonl")
    serve = fleet.spawn("serve", _serve_args(run_dir, spec_path, port))
    victim = fleet.spawn("worker-0", _worker_args(port, "chaos-victim"))
    survivor = fleet.spawn("worker-1", _worker_args(port, "chaos-survivor"))
    _wait_for_records(fleet, results, 1)
    time.sleep(rng.uniform(0.0, 0.3))
    fleet.sigkill("worker-0", victim)
    problems = []
    if fleet.wait("serve", serve, _COMPLETION_TIMEOUT) != 0:
        problems.append("coordinator exited non-zero after losing a worker")
    if fleet.wait("worker-1", survivor, 60.0) != 0:
        problems.append("surviving worker exited non-zero")
    lost = _lost_records(run_dir)
    if lost:
        problems.append(f"{len(lost)} jobs declared lost (a killed worker's "
                        "jobs must be requeued, not lost)")
    return problems


def _scenario_wedge_worker(fleet: _Fleet, spec_path: str, run_dir: str,
                           rng: random.Random) -> List[str]:
    port = _free_port()
    results = os.path.join(run_dir, "results.jsonl")
    serve = fleet.spawn("serve", _serve_args(run_dir, spec_path, port))
    victim = fleet.spawn("worker-0", _worker_args(port, "chaos-wedged"))
    fleet.spawn("worker-1", _worker_args(port, "chaos-survivor"))
    _wait_for_records(fleet, results, 1)
    time.sleep(rng.uniform(0.0, 0.2))
    fleet.sigstop("worker-0", victim)
    # The socket stays open but the process is frozen: only the heartbeat
    # watchdog can notice.  Wait for its requeue, then finish the victim.
    _wait_for_journal_event(fleet, run_dir, "requeued",
                            kind="heartbeat-timeout")
    fleet.sigkill("worker-0", victim)
    problems = []
    if fleet.wait("serve", serve, _COMPLETION_TIMEOUT) != 0:
        problems.append("coordinator exited non-zero after a wedged worker")
    lost = _lost_records(run_dir)
    if lost:
        problems.append(f"{len(lost)} jobs declared lost after one wedge "
                        "(requeue budget should absorb it)")
    return problems


def _scenario_torn_tail(fleet: _Fleet, spec_path: str, run_dir: str,
                        rng: random.Random) -> List[str]:
    port = _free_port()
    results = os.path.join(run_dir, "results.jsonl")
    serve = fleet.spawn("serve", _serve_args(run_dir, spec_path, port))
    workers = [fleet.spawn(f"worker-{i}", _worker_args(port, f"chaos-w{i}"))
               for i in range(2)]
    _wait_for_records(fleet, results, 2)
    time.sleep(rng.uniform(0.0, 0.2))
    fleet.sigkill("serve", serve)
    for i, worker in enumerate(workers):
        fleet.sigkill(f"worker-{i}", worker)
    # Simulate the torn writes a real power loss leaves behind: the last
    # record loses its tail, the journal gains a half-written event.
    _tear_results_tail(results)
    _append_journal_garbage(journal_path(run_dir))
    fleet.log("tore results.jsonl tail and appended garbage to the journal")
    resume = fleet.spawn("serve-resume",
                         _resume_args(run_dir, port,
                                      extra=["--local-workers", "2"]))
    code = fleet.wait("serve-resume", resume, _COMPLETION_TIMEOUT)
    return [] if code == 0 else [f"resumed coordinator exited {code}"]


_SCENARIO_FUNCS = {
    "kill-coordinator": _scenario_kill_coordinator,
    "kill-worker": _scenario_kill_worker,
    "wedge-worker": _scenario_wedge_worker,
    "torn-tail": _scenario_torn_tail,
}


def run_scenario(scenario: str, seed: int = 0,
                 out_dir: Optional[str] = None,
                 keep: bool = False) -> ChaosResult:
    """Drive one fault-injection scenario end to end and return the verdict.

    The scratch directory holds the disturbed run, the serial reference
    run, one ``.log`` per subprocess, the journal and the spans — exactly
    what a CI job wants to upload when the verdict is FAILED.
    """
    if scenario not in _SCENARIO_FUNCS:
        raise ChaosError(f"unknown scenario {scenario!r}; "
                         f"known: {list(CHAOS_SCENARIOS)}")
    scratch = out_dir or tempfile.mkdtemp(prefix=f"art9-chaos-{scenario}-")
    os.makedirs(scratch, exist_ok=True)
    run_dir = os.path.join(scratch, "disturbed")
    reference_dir = os.path.join(scratch, "reference")
    events: List[str] = []
    fleet = _Fleet(scratch, events)
    spec = chaos_spec()
    try:
        spec_path = _write_spec(spec, scratch)
        rng = random.Random(seed)
        problems = _SCENARIO_FUNCS[scenario](fleet, spec_path, run_dir, rng)
        _run_reference(spec, reference_dir)
        identical, compare_detail = _compare_canonical(run_dir, reference_dir)
        if not identical:
            problems.append(compare_detail)
        if not replay_journal(journal_path(run_dir)):
            problems.append("run finished without any journal events")
        ok = not problems
        detail = compare_detail if ok else "; ".join(problems)
        fleet.log(f"verdict: {'OK' if ok else 'FAILED'} — {detail}")
        result = ChaosResult(scenario=scenario, seed=seed, ok=ok,
                             detail=detail, run_dir=run_dir,
                             reference_dir=reference_dir, events=events)
    finally:
        fleet.reap()
    if result.ok and not keep and out_dir is None:
        shutil.rmtree(scratch, ignore_errors=True)
    return result
