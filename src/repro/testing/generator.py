"""Seeded random ART-9 program generator.

Programs are built from blocks whose control flow is termination-safe by
construction:

* **straight-line blocks** — random R/I-type arithmetic, logic, shifts and
  LOAD/STORE instructions over the scratch registers T0..T6 (every TDM
  address reachable from a 9-trit register is legal, so memory operands need
  no range discipline);
* **bounded loops** — a counter in T8 initialised to an exact trip count,
  decremented each iteration and tested with ``COMP``/``BNE`` against a
  zeroed T7, so the loop body executes exactly ``trips`` times;
* **forward branches** — a BEQ/BNE over a data-dependent register trit that
  skips a short shadow block (taken or not, control only moves forward);
* **forward jumps** — JAL, and JALR through an absolute label address
  materialised with a LUI/LI pair.

All control either moves strictly forward or is a loop with a static trip
count, so every generated program halts; the differential runner still
enforces an instruction budget as a backstop.  The same seed always yields
the same program (``random.Random(seed)``), which makes fuzzing failures
reproducible from the seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.isa.instructions import Instruction
from repro.isa.program import DataSegment, Program

#: Registers freely usable inside generated blocks.  T7 and T8 are reserved
#: for loop scaffolding (zero reference and trip counter); T6 doubles as the
#: scratch register of loop tests and JALR address materialisation, so blocks
#: may read/write it but must not rely on it across block boundaries.
_BLOCK_REGISTERS = (0, 1, 2, 3, 4, 5, 6)

#: R-type operations drawn for straight-line blocks (mnemonic, needs_tb).
_R_OPS = ("MV", "PTI", "NTI", "STI", "AND", "OR", "XOR", "ADD", "SUB", "SR", "SL", "COMP")

#: I-type operations with their immediate ranges.
_I_OPS = {"ANDI": 13, "ADDI": 13, "SRI": 4, "SLI": 4, "LUI": 40, "LI": 121}


@dataclass
class GeneratorConfig:
    """Knobs of the random program generator."""

    min_blocks: int = 3
    max_blocks: int = 8
    max_body_ops: int = 8
    max_loop_trips: int = 5
    max_program_length: int = 90
    data_words: int = 12
    memory_op_weight: float = 0.25


def _random_value(rng: random.Random) -> int:
    """A balanced 9-trit value, biased towards small magnitudes and extremes."""
    choice = rng.random()
    if choice < 0.5:
        return rng.randint(-40, 40)
    if choice < 0.9:
        return rng.randint(-9841, 9841)
    return rng.choice((-9841, -9840, -1, 0, 1, 9840, 9841))


def _straight_line_ops(rng: random.Random, count: int, config: GeneratorConfig):
    """Yield ``count`` random non-control instructions over T0..T6."""
    ops = []
    for _ in range(count):
        roll = rng.random()
        ta = rng.choice(_BLOCK_REGISTERS)
        tb = rng.choice(_BLOCK_REGISTERS)
        if roll < config.memory_op_weight:
            imm = rng.randint(-13, 13)
            if rng.random() < 0.5:
                ops.append(Instruction("LOAD", ta=ta, tb=tb, imm=imm))
            else:
                ops.append(Instruction("STORE", ta=ta, tb=tb, imm=imm))
        elif roll < config.memory_op_weight + 0.35:
            mnemonic = rng.choice(tuple(_I_OPS))
            half = _I_OPS[mnemonic]
            ops.append(Instruction(mnemonic, ta=ta, imm=rng.randint(-half, half)))
        else:
            mnemonic = rng.choice(_R_OPS)
            ops.append(Instruction(mnemonic, ta=ta, tb=tb))
    return ops


def generate_program(seed: int, config: Optional[GeneratorConfig] = None) -> Program:
    """Generate one always-terminating random ART-9 program from ``seed``."""
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    program = Program(name=f"fuzz-{seed}")
    label_counter = [0]

    def fresh_label(kind: str) -> str:
        label_counter[0] += 1
        return f"{kind}_{label_counter[0]}"

    # Data segment: a handful of random words near address 0 so early loads
    # read interesting values (loads elsewhere legally read zero).
    if config.data_words:
        values = [_random_value(rng) for _ in range(config.data_words)]
        program.data.append(DataSegment(base_address=0, values=values))

    # Prologue: give a few registers non-trivial starting values via LUI/LI
    # pairs (the only way to materialise a full-width constant).
    for reg in rng.sample(_BLOCK_REGISTERS, rng.randint(2, 5)):
        value = _random_value(rng)
        high = rng.randint(-40, 40)
        low = rng.randint(-121, 121)
        if rng.random() < 0.5:
            program.append(Instruction("LUI", ta=reg, imm=high))
            program.append(Instruction("LI", ta=reg, imm=low))
        else:
            program.append(Instruction("LI", ta=reg, imm=value % 121 - 60))

    block_builders = ("straight", "loop", "branch", "jal", "jalr")
    blocks = rng.randint(config.min_blocks, config.max_blocks)
    for _ in range(blocks):
        if len(program) >= config.max_program_length - 15:
            break
        kind = rng.choice(block_builders)

        if kind == "straight":
            program.extend(_straight_line_ops(rng, rng.randint(2, config.max_body_ops), config))

        elif kind == "loop":
            trips = rng.randint(1, config.max_loop_trips)
            body = _straight_line_ops(rng, rng.randint(1, min(5, config.max_body_ops)), config)
            top = fresh_label("loop")
            program.append(Instruction("SUB", ta=7, tb=7))           # T7 = 0
            program.append(Instruction("SUB", ta=8, tb=8))           # T8 = 0
            program.append(Instruction("ADDI", ta=8, imm=trips))     # trip counter
            program.add_label(top)
            program.extend(body)
            program.append(Instruction("ADDI", ta=8, imm=-1))
            program.append(Instruction("MV", ta=6, tb=8))
            program.append(Instruction("COMP", ta=6, tb=7))          # T6 = sign(T8)
            program.append(Instruction("BNE", tb=6, branch_trit=0, imm=None, label=top))

        elif kind == "branch":
            skip = fresh_label("skip")
            mnemonic = rng.choice(("BEQ", "BNE"))
            reg = rng.choice(_BLOCK_REGISTERS)
            trit = rng.choice((-1, 0, 1))
            shadow = _straight_line_ops(rng, rng.randint(1, 3), config)
            program.append(
                Instruction(mnemonic, tb=reg, branch_trit=trit, imm=None, label=skip)
            )
            program.extend(shadow)
            program.add_label(skip)

        elif kind == "jal":
            target = fresh_label("jal")
            shadow = _straight_line_ops(rng, rng.randint(1, 3), config)
            program.append(Instruction("JAL", ta=8, imm=None, label=target))
            program.extend(shadow)
            program.add_label(target)

        else:  # jalr through an absolute address in T6
            target = fresh_label("jalr")
            shadow = _straight_line_ops(rng, rng.randint(1, 2), config)
            program.append(Instruction("LUI", ta=6, imm=0))
            program.append(Instruction("LI", ta=6, imm=None, label=target))
            program.append(Instruction("JALR", ta=8, tb=6, imm=0))
            program.extend(shadow)
            program.add_label(target)

    program.append(Instruction("HALT"))
    if len(program) > 3 ** 5 // 2:  # JALR labels materialise through a 5-trit LI
        raise AssertionError(
            f"generated program of {len(program)} instructions exceeds the "
            "LI-addressable window; lower max_program_length"
        )
    program.resolve_labels()
    return program


def generate_data_variants(program: Program, lanes: int, seed: int) -> "list[Program]":
    """Derive ``lanes`` batchable data variants of one program.

    Every variant shares ``program``'s instruction list, labels and segment
    layout verbatim — only the initial data-memory *values* are re-rolled
    (deterministically from ``seed`` and the lane index, through the same
    biased value distribution the generator itself draws from).  The result
    is exactly the shape :class:`repro.sim.batch.BatchEngine` accepts:
    identical instruction streams, divergent data.  Lane 0 is the original
    program, so a batch run covers the un-perturbed case too.
    """
    variants = [program]
    for lane in range(1, lanes):
        rng = random.Random((seed << 8) ^ lane)
        data = [
            DataSegment(
                base_address=segment.base_address,
                values=[_random_value(rng) for _ in segment.values],
            )
            for segment in program.data
        ]
        variants.append(
            Program(
                name=program.name,
                instructions=program.instructions,
                labels=program.labels,
                data=data,
                data_labels=program.data_labels,
            )
        )
    return variants
